package netsim

import (
	"testing"
	"time"

	"drsnet/internal/topology"
)

// recordingTap collects every tap callback for inspection.
type recordingTap struct {
	sent      []Frame
	delivered []Frame
}

func (r *recordingTap) FrameSent(at time.Duration, fr Frame) { r.sent = append(r.sent, fr) }
func (r *recordingTap) FrameDelivered(at time.Duration, fr Frame) {
	r.delivered = append(r.delivered, fr)
}

// TestTapObservesSendAndDelivery: the tap sees every validated send —
// including one that blackholes into a dead NIC — and every actual
// delivery, with the receiving node in Dst.
func TestTapObservesSendAndDelivery(t *testing.T) {
	sched, n := newNet(t, 3)
	tap := &recordingTap{}
	n.SetTap(tap)
	n.SetHandler(1, func(fr Frame) {})
	n.SetHandler(2, func(fr Frame) {})

	if err := n.Send(0, 0, 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	n.Fail(n.Cluster().NIC(2, 0))
	if err := n.Send(2, 0, 1, []byte("eaten")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)

	if len(tap.sent) != 2 {
		t.Fatalf("tap saw %d sends, want 2", len(tap.sent))
	}
	if len(tap.delivered) != 1 {
		t.Fatalf("tap saw %d deliveries, want 1", len(tap.delivered))
	}
	if fr := tap.delivered[0]; fr.Src != 0 || fr.Dst != 1 {
		t.Fatalf("delivered frame = %+v", fr)
	}
}

// TestTapBroadcast: a broadcast reports one send and one delivery per
// live receiver, each stamped with the receiving node.
func TestTapBroadcast(t *testing.T) {
	sched, n := newNet(t, 4)
	tap := &recordingTap{}
	n.SetTap(tap)
	for node := 1; node < 4; node++ {
		n.SetHandler(node, func(fr Frame) {})
	}
	if err := n.Send(0, 0, Broadcast, []byte("all")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(tap.sent) != 1 || tap.sent[0].Dst != Broadcast {
		t.Fatalf("sent = %+v", tap.sent)
	}
	if len(tap.delivered) != 3 {
		t.Fatalf("tap saw %d deliveries, want 3", len(tap.delivered))
	}
	seen := map[int]bool{}
	for _, fr := range tap.delivered {
		seen[fr.Dst] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("delivery nodes = %v", seen)
	}
}

// TestCarrierUp: carrier reflects component state only — a
// fail-stopped daemon behind healthy NICs still shows carrier, while
// any dead component on the path (tx half, segment, rx half) kills it.
func TestCarrierUp(t *testing.T) {
	_, n := newNet(t, 3)
	cl := n.Cluster()
	if !n.CarrierUp(0, 1, 0) {
		t.Fatal("healthy link shows no carrier")
	}

	n.FailNode(1)
	if !n.CarrierUp(0, 1, 0) {
		t.Fatal("crashed daemon must keep link lights on")
	}
	n.RestoreNode(1)

	n.FailDir(cl.NIC(0, 0), DirTx)
	if n.CarrierUp(0, 1, 0) {
		t.Fatal("tx-dead sender NIC shows carrier")
	}
	if !n.CarrierUp(1, 0, 0) {
		t.Fatal("tx-dead NIC must still receive (gray failure)")
	}
	n.RestoreDir(cl.NIC(0, 0), DirTx)

	n.Fail(cl.Backplane(0))
	if n.CarrierUp(0, 1, 0) {
		t.Fatal("dead segment shows carrier")
	}
	if !n.CarrierUp(0, 1, 1) {
		t.Fatal("rail 1 carrier lost with rail 0 segment")
	}
	n.Restore(cl.Backplane(0))

	n.FailDir(cl.NIC(1, 0), DirRx)
	if n.CarrierUp(0, 1, 0) {
		t.Fatal("rx-dead receiver NIC shows carrier")
	}
}

// TestReachable: ground-truth connectivity honours NIC, segment and
// process state, including multi-hop relay chains.
func TestReachable(t *testing.T) {
	_, n := newNet(t, 4)
	cl := n.Cluster()
	if !n.Reachable(0, 3) {
		t.Fatal("healthy cluster disconnected")
	}

	// Kill 0's rail-0 NIC and 3's rail-1 NIC: no direct rail remains,
	// but any relay bridges rail 1 → rail 0.
	n.Fail(cl.NIC(0, 0))
	n.Fail(cl.NIC(3, 1))
	if !n.Reachable(0, 3) {
		t.Fatal("relay path not found")
	}

	// Fail-stop every possible relay: only direct paths remain, and
	// there are none.
	n.FailNode(1)
	n.FailNode(2)
	if n.Reachable(0, 3) {
		t.Fatal("reachable with every relay dead and no direct rail")
	}
	n.RestoreNode(1)
	if !n.Reachable(0, 3) {
		t.Fatal("restored relay not used")
	}

	// A dead destination process is unreachable even with carrier.
	n.FailNode(3)
	if n.Reachable(0, 3) {
		t.Fatal("fail-stopped destination reported reachable")
	}
}

// TestReachableBothBackplanes: with both segments down nothing
// reaches anything.
func TestReachableBothBackplanes(t *testing.T) {
	_, n := newNet(t, 3)
	cl := topology.Dual(3)
	n.Fail(cl.Backplane(0))
	n.Fail(cl.Backplane(1))
	if n.Reachable(0, 1) {
		t.Fatal("reachable across two dead backplanes")
	}
}
