// Package overload implements the control-plane overload-protection
// primitives the protocol stack shares: deterministic token buckets
// that budget probe retransmits and discovery floods, a seeded jitter
// source that desynchronizes nodes whose timers would otherwise fire
// in lock-step, and a degraded-mode governor — a small hysteresis
// state machine that detects budget saturation and tells the daemon
// to pin last-known-good routes and suppress churn until the storm
// passes.
//
// The paper's DRS survives isolated rail failures, but a correlated
// failure storm (a ToR outage, a mass crash-restart) triggers
// simultaneous retransmits, discovery floods and rejoin traffic from
// every node at once. This package is the admission control for that
// blast radius. Everything here is deterministic: token refill is
// pure arithmetic on the caller's clock, and jitter comes from a
// seeded substream, so seeded simulations stay bit-identical at any
// worker count.
//
// Types are not goroutine-safe; the owning protocol serializes access
// under its own lock, exactly like linkmon and dataplane.
package overload

import (
	"fmt"
	"time"

	"drsnet/internal/rng"
)

// Defaults for an enabled Config with unset fields.
const (
	DefaultProbeRate      = 2.0 // retransmits per second per node
	DefaultProbeBurst     = 4
	DefaultQueryRate      = 1.0 // discovery broadcasts per second
	DefaultQueryBurst     = 2
	DefaultQueueCapacity  = 32
	DefaultDegradedSheds  = 8
	DefaultDegradedWindow = 2 * time.Second
	DefaultDegradedQuiet  = 5 * time.Second
	DefaultJitterFrac     = 0.1
)

// Config parameterizes the overload-protection layer. The zero value
// disables it entirely, which keeps seeded goldens byte-identical;
// enable with Default() or explicit budgets.
type Config struct {
	// Enabled turns the layer on. When false every other field must be
	// zero (a typo cannot silently half-enable the feature).
	Enabled bool
	// ProbeRate and ProbeBurst budget RTO-driven probe retransmits:
	// the bucket refills ProbeRate tokens per second up to ProbeBurst,
	// and a retransmit that finds the bucket empty is shed (the next
	// probe round re-probes anyway). Zero means the defaults.
	ProbeRate  float64
	ProbeBurst int
	// QueryRate and QueryBurst budget route-discovery broadcasts the
	// same way. A shed discovery is deferred to the prioritized
	// control queue and drained when tokens return.
	QueryRate  float64
	QueryBurst int
	// HelloMinInterval floors the gap between membership hello
	// broadcasts (dynamic membership only). Zero keeps the classic
	// once-per-round cadence.
	HelloMinInterval time.Duration
	// QueueCapacity bounds the prioritized control queue of deferred
	// intents (liveness > repair > discovery). Zero means the default.
	QueueCapacity int
	// DegradedSheds, DegradedWindow and DegradedQuiet parameterize the
	// degraded-mode governor: DegradedSheds shed events inside one
	// DegradedWindow enter degraded mode, and it exits only after
	// DegradedQuiet with no sheds — hysteresis, so a borderline load
	// cannot oscillate the mode. DegradedSheds < 0 disables the
	// governor (budgets still apply).
	DegradedSheds  int
	DegradedWindow time.Duration
	DegradedQuiet  time.Duration
	// JitterFrac spreads RTO deadlines and hello resumption by up to
	// this fraction of the base interval, drawn from a per-node seeded
	// stream, so synchronized nodes desynchronize instead of storming.
	// Zero means the default; negative disables jitter.
	JitterFrac float64
}

// Default returns the stock overload-protection configuration.
func Default() Config {
	return Config{
		Enabled:        true,
		ProbeRate:      DefaultProbeRate,
		ProbeBurst:     DefaultProbeBurst,
		QueryRate:      DefaultQueryRate,
		QueryBurst:     DefaultQueryBurst,
		QueueCapacity:  DefaultQueueCapacity,
		DegradedSheds:  DefaultDegradedSheds,
		DegradedWindow: DefaultDegradedWindow,
		DegradedQuiet:  DefaultDegradedQuiet,
		JitterFrac:     DefaultJitterFrac,
	}
}

// Normalize applies defaults and validates the configuration. The
// zero value (disabled) is valid; a disabled config with stray fields
// is rejected.
func (c *Config) Normalize() error {
	if !c.Enabled {
		if *c != (Config{}) {
			return fmt.Errorf("overload: budget fields set but overload protection is disabled")
		}
		return nil
	}
	if c.ProbeRate < 0 || c.QueryRate < 0 {
		return fmt.Errorf("overload: negative budget rate")
	}
	if c.ProbeBurst < 0 || c.QueryBurst < 0 {
		return fmt.Errorf("overload: negative budget burst")
	}
	if c.HelloMinInterval < 0 {
		return fmt.Errorf("overload: negative hello min interval")
	}
	if c.QueueCapacity < 0 {
		return fmt.Errorf("overload: negative control queue capacity")
	}
	if c.DegradedWindow < 0 || c.DegradedQuiet < 0 {
		return fmt.Errorf("overload: negative degraded-mode duration")
	}
	if c.JitterFrac > 1 {
		return fmt.Errorf("overload: jitter fraction %v above 1", c.JitterFrac)
	}
	if c.ProbeRate == 0 {
		c.ProbeRate = DefaultProbeRate
	}
	if c.ProbeBurst == 0 {
		c.ProbeBurst = DefaultProbeBurst
	}
	if c.QueryRate == 0 {
		c.QueryRate = DefaultQueryRate
	}
	if c.QueryBurst == 0 {
		c.QueryBurst = DefaultQueryBurst
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = DefaultQueueCapacity
	}
	if c.DegradedSheds == 0 {
		c.DegradedSheds = DefaultDegradedSheds
	}
	if c.DegradedWindow == 0 {
		c.DegradedWindow = DefaultDegradedWindow
	}
	if c.DegradedQuiet == 0 {
		c.DegradedQuiet = DefaultDegradedQuiet
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = DefaultJitterFrac
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	}
	return nil
}

// Bucket is a deterministic token bucket: rate tokens per second
// refill up to burst, and each admitted action costs one token.
// Refill is pure arithmetic on the caller-supplied clock, so a seeded
// simulation replays bit-identically.
type Bucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration
}

// NewBucket returns a full bucket with the given refill rate and
// depth. A nil *Bucket admits everything (no budget installed).
func NewBucket(rate float64, burst int) *Bucket {
	return &Bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// refill credits tokens for the time elapsed since the last call.
func (b *Bucket) refill(now time.Duration) {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Take admits one action if a token is available, spending it. A nil
// bucket admits everything.
func (b *Bucket) Take(now time.Duration) bool {
	if b == nil {
		return true
	}
	b.refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the tokens currently available (refilled to now).
// A nil bucket reports -1, meaning unbudgeted.
func (b *Bucket) Tokens(now time.Duration) float64 {
	if b == nil {
		return -1
	}
	b.refill(now)
	return b.tokens
}

// Jitter is a per-node seeded stream of uniform fractions used to
// desynchronize timers. Distinct seeds (node index, incarnation)
// yield independent streams; the same seed replays identically.
type Jitter struct {
	src *rng.Source
}

// NewJitter returns a jitter stream for the given seed.
func NewJitter(seed uint64) *Jitter {
	return &Jitter{src: rng.New(seed).Split(0x0ad0ff)}
}

// Frac returns the next uniform fraction in [0, 1).
func (j *Jitter) Frac() float64 { return j.src.Float64() }

// Scale returns d extended by up to frac·d of deterministic jitter.
// Non-positive frac (or a nil Jitter) returns d unchanged.
func (j *Jitter) Scale(d time.Duration, frac float64) time.Duration {
	if j == nil || frac <= 0 || d <= 0 {
		return d
	}
	return d + time.Duration(frac*float64(d)*j.Frac())
}

// Governor is the degraded-mode state machine. Budget saturation
// (shed events) inside a short window enters degraded mode; only a
// sustained quiet period exits it. While degraded the daemon pins
// last-known-good routes and suppresses churn instead of oscillating.
type Governor struct {
	cfg      Config
	sheds    []time.Duration // timestamps of the most recent sheds
	lastShed time.Duration
	degraded bool
	since    time.Duration // entry time of the current episode
}

// NewGovernor returns a governor for a normalized config.
func NewGovernor(cfg Config) *Governor {
	return &Governor{cfg: cfg, lastShed: -1}
}

// Degraded reports whether the node is in degraded mode.
func (g *Governor) Degraded() bool { return g.degraded }

// Since returns when the current degraded episode began (valid only
// while Degraded).
func (g *Governor) Since() time.Duration { return g.since }

// Shed records one budget-saturation event and reports whether it
// entered degraded mode. DegradedSheds < 0 disables entry.
func (g *Governor) Shed(now time.Duration) (entered bool) {
	g.lastShed = now
	if g.cfg.DegradedSheds < 0 || g.degraded {
		return false
	}
	g.sheds = append(g.sheds, now)
	if n := len(g.sheds); n > g.cfg.DegradedSheds {
		g.sheds = g.sheds[n-g.cfg.DegradedSheds:]
	}
	if len(g.sheds) >= g.cfg.DegradedSheds && now-g.sheds[0] <= g.cfg.DegradedWindow {
		g.degraded = true
		g.since = now
		g.sheds = g.sheds[:0]
		return true
	}
	return false
}

// Tick re-evaluates the exit condition: degraded mode ends only after
// DegradedQuiet without a shed. It reports whether this call exited
// and how long the episode held.
func (g *Governor) Tick(now time.Duration) (exited bool, held time.Duration) {
	if !g.degraded || now-g.lastShed < g.cfg.DegradedQuiet {
		return false, 0
	}
	g.degraded = false
	return true, now - g.since
}
