package overload

import (
	"testing"
	"time"
)

func TestConfigZeroValueDisabled(t *testing.T) {
	var c Config
	if err := c.Normalize(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if c.Enabled {
		t.Fatal("zero config enabled")
	}
}

func TestConfigStrayFieldsRejected(t *testing.T) {
	cases := []Config{
		{ProbeRate: 1},
		{QueryBurst: 2},
		{HelloMinInterval: time.Second},
		{DegradedSheds: 3},
		{JitterFrac: 0.5},
	}
	for i, c := range cases {
		if err := c.Normalize(); err == nil {
			t.Errorf("case %d: stray fields with Enabled=false accepted", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Enabled: true}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	want := Default()
	if c != want {
		t.Fatalf("normalized enabled config = %+v, want defaults %+v", c, want)
	}
	// Normalizing the defaults is a fixed point.
	d := Default()
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	if d != want {
		t.Fatalf("Default() not a Normalize fixed point: %+v", d)
	}
}

func TestConfigRejectsBadValues(t *testing.T) {
	cases := []Config{
		{Enabled: true, ProbeRate: -1},
		{Enabled: true, ProbeBurst: -1},
		{Enabled: true, QueryRate: -0.5},
		{Enabled: true, HelloMinInterval: -time.Second},
		{Enabled: true, QueueCapacity: -1},
		{Enabled: true, DegradedWindow: -time.Second},
		{Enabled: true, JitterFrac: 1.5},
	}
	for i, c := range cases {
		if err := c.Normalize(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestBucketAdmitsBurstThenRefills(t *testing.T) {
	b := NewBucket(2, 3) // 2 tokens/s, depth 3, starts full
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if !b.Take(now) {
			t.Fatalf("take %d of initial burst denied", i)
		}
	}
	if b.Take(now) {
		t.Fatal("empty bucket admitted")
	}
	// 500 ms refills one token at 2/s.
	now = 500 * time.Millisecond
	if !b.Take(now) {
		t.Fatal("refilled token denied")
	}
	if b.Take(now) {
		t.Fatal("second take after single refill admitted")
	}
	// A long idle period caps at the burst depth.
	now = time.Hour
	if got := b.Tokens(now); got != 3 {
		t.Fatalf("tokens after idle = %v, want capped at 3", got)
	}
}

func TestBucketNilAdmitsEverything(t *testing.T) {
	var b *Bucket
	if !b.Take(0) {
		t.Fatal("nil bucket denied")
	}
	if b.Tokens(0) != -1 {
		t.Fatal("nil bucket should report -1 tokens")
	}
}

func TestBucketClockMonotone(t *testing.T) {
	b := NewBucket(1, 1)
	if !b.Take(time.Second) {
		t.Fatal("initial take denied")
	}
	// An earlier timestamp must not refill (defensive: budget callers
	// always pass a monotone clock, but a clamp keeps mistakes safe).
	if b.Take(0) {
		t.Fatal("time going backwards minted a token")
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	a, b := NewJitter(7), NewJitter(7)
	for i := 0; i < 100; i++ {
		av, bv := a.Frac(), b.Frac()
		if av != bv {
			t.Fatalf("same-seed streams diverge at %d: %v vs %v", i, av, bv)
		}
		if av < 0 || av >= 1 {
			t.Fatalf("fraction %v outside [0,1)", av)
		}
	}
	c := NewJitter(8)
	same := 0
	a = NewJitter(7)
	for i := 0; i < 100; i++ {
		if a.Frac() == c.Frac() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds nearly identical (%d/100 equal draws)", same)
	}
}

func TestJitterScale(t *testing.T) {
	j := NewJitter(1)
	base := 100 * time.Millisecond
	for i := 0; i < 50; i++ {
		d := j.Scale(base, 0.25)
		if d < base || d > base+base/4 {
			t.Fatalf("scaled deadline %v outside [%v, %v]", d, base, base+base/4)
		}
	}
	if j.Scale(base, 0) != base {
		t.Fatal("zero frac changed the deadline")
	}
	var nilJ *Jitter
	if nilJ.Scale(base, 0.5) != base {
		t.Fatal("nil jitter changed the deadline")
	}
}

func TestGovernorEntersOnShedBurstInsideWindow(t *testing.T) {
	cfg := Config{Enabled: true, DegradedSheds: 3, DegradedWindow: time.Second, DegradedQuiet: 2 * time.Second}
	g := NewGovernor(cfg)
	if g.Shed(0) || g.Shed(100*time.Millisecond) {
		t.Fatal("entered before threshold")
	}
	if !g.Shed(200 * time.Millisecond) {
		t.Fatal("third shed inside window did not enter")
	}
	if !g.Degraded() || g.Since() != 200*time.Millisecond {
		t.Fatalf("degraded=%v since=%v", g.Degraded(), g.Since())
	}
}

func TestGovernorSpreadShedsDoNotEnter(t *testing.T) {
	cfg := Config{Enabled: true, DegradedSheds: 3, DegradedWindow: time.Second, DegradedQuiet: 2 * time.Second}
	g := NewGovernor(cfg)
	// Sheds 2 s apart never fit three inside a 1 s window.
	for i := 0; i < 10; i++ {
		if g.Shed(time.Duration(i) * 2 * time.Second) {
			t.Fatalf("spread sheds entered degraded mode at %d", i)
		}
	}
}

func TestGovernorExitNeedsQuietPeriod(t *testing.T) {
	cfg := Config{Enabled: true, DegradedSheds: 2, DegradedWindow: time.Second, DegradedQuiet: 3 * time.Second}
	g := NewGovernor(cfg)
	g.Shed(0)
	if !g.Shed(time.Millisecond) {
		t.Fatal("did not enter")
	}
	// A shed during the episode extends it (hysteresis).
	g.Shed(2 * time.Second)
	if exited, _ := g.Tick(4 * time.Second); exited {
		t.Fatal("exited 2s after a shed with 3s quiet required")
	}
	exited, held := g.Tick(5 * time.Second)
	if !exited {
		t.Fatal("did not exit after the quiet period")
	}
	if held != 5*time.Second-time.Millisecond {
		t.Fatalf("held = %v", held)
	}
	if g.Degraded() {
		t.Fatal("still degraded after exit")
	}
}

func TestGovernorDisabled(t *testing.T) {
	g := NewGovernor(Config{Enabled: true, DegradedSheds: -1})
	for i := 0; i < 100; i++ {
		if g.Shed(time.Duration(i) * time.Millisecond) {
			t.Fatal("disabled governor entered degraded mode")
		}
	}
}
