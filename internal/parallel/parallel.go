// Package parallel is the shared sweep engine behind every
// embarrassingly parallel experiment in this repository: the Figure 2
// analytic curves, the E5c fault-coverage campaign, the all-pairs
// survivability sweep, the Figure 1 cost surface and the availability
// grids. It provides deterministic work-sharding with ordered result
// collection: work items are indexed 0..n-1, workers pull indices from
// a shared cursor, and every result lands in its own index slot — so
// the output of a sweep is bit-identical regardless of the worker
// count or goroutine scheduling.
//
// The contract every caller relies on:
//
//   - fn(i) must depend only on i (and immutable shared state), never
//     on which worker runs it or in what order items complete;
//   - results are returned in index order;
//   - a worker-count of 0 means GOMAXPROCS;
//   - cancellation via context stops the sweep at the next item
//     boundary; items already dispatched run to completion;
//   - when several items fail, the error of the LOWEST index wins, so
//     error reporting is deterministic too;
//   - a panic inside fn is re-raised in the calling goroutine (not
//     lost in a worker), preserving the serial code's panic behaviour.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count for a sweep of n items:
// requests ≤ 0 mean GOMAXPROCS, and the result never exceeds n (there
// is no point parking idle goroutines on a short sweep). For n ≤ 0 it
// returns 1 so the engine's bookkeeping stays trivial.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n > 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// panicError carries a worker panic back to the calling goroutine.
type panicError struct {
	index int
	value any
}

// ForEach runs fn(i) for every i in [0, n) across workers goroutines
// (0 = GOMAXPROCS) and waits for completion. Indices are handed out
// through an atomic cursor, so the items themselves may complete in
// any order; determinism comes from callers writing results into
// per-index slots. The first error by index order is returned; once
// any item fails (or ctx is cancelled) no new items are dispatched.
// A nil ctx means context.Background().
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers, n)

	var (
		cursor int64
		stop   atomic.Bool
		mu     sync.Mutex
		errIdx = n // lowest failing index seen so far
		errVal error
		pnc    *panicError
		wg     sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	done := ctx.Done()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					stop.Store(true)
					return
				default:
				}
				i := int(atomic.AddInt64(&cursor, 1) - 1)
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if pnc == nil || i < pnc.index {
								pnc = &panicError{index: i, value: r}
							}
							mu.Unlock()
							stop.Store(true)
							err = fmt.Errorf("parallel: item %d panicked", i)
						}
					}()
					return fn(i)
				}()
				if err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if pnc != nil {
		panic(pnc.value)
	}
	if errVal != nil {
		return errVal
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) across workers goroutines and
// returns the results in index order. Error and cancellation semantics
// match ForEach; on error the partial results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
