package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNormalization(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, 1000, maxprocs},
		{-3, 1000, maxprocs},
		{4, 1000, 4},
		{8, 3, 3},
		{0, 0, 1},
		{5, -1, 5},
	}
	for _, tc := range cases {
		if got := Workers(tc.requested, tc.n); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.requested, tc.n, got, tc.want)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		var visits [n]int32
		err := ForEach(nil, workers, n, func(i int) error {
			atomic.AddInt32(&visits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		out, err := Map(nil, workers, 257, func(i int) (int, error) { return 3*i + 1, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d diverges at %d", workers, i)
			}
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Every odd index fails; the reported error must be index 1's
	// regardless of completion order.
	for _, workers := range []int{1, 4, 16} {
		err := ForEach(nil, workers, 64, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 1" {
			t.Fatalf("workers=%d: err = %v, want item 1", workers, err)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	var dispatched int32
	boom := errors.New("boom")
	err := ForEach(nil, 1, 1000, func(i int) error {
		atomic.AddInt32(&dispatched, 1)
		if i == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// With one worker the dispatch stops immediately after the failure.
	if n := atomic.LoadInt32(&dispatched); n != 5 {
		t.Fatalf("dispatched %d items after error, want 5", n)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEach(ctx, 2, 100000, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
		time.Sleep(time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 100000 {
		t.Fatal("cancellation did not stop the sweep")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	_ = ForEach(nil, 4, 32, func(i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
	t.Fatal("unreachable: ForEach should have panicked")
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(nil, 8, 0, func(i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty sweep")
	}
	out, err := Map(nil, 8, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map on empty sweep: %v, %v", out, err)
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(nil, 2, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if out != nil {
		t.Fatalf("partial results returned: %v", out)
	}
}
