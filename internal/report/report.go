// Package report generates the full reproduction report: every table,
// figure and ablation of the paper regenerated in one pass and written
// as a single Markdown document with embedded ASCII charts. This is
// the "one command reproduces the paper" entry point behind
// cmd/drsreport.
package report

import (
	"fmt"
	"io"
	"time"

	"drsnet/internal/availability"
	"drsnet/internal/costmodel"
	"drsnet/internal/experiments"
	"drsnet/internal/failure"
	"drsnet/internal/montecarlo"
	"drsnet/internal/runtime"
	"drsnet/internal/survival"
	"drsnet/internal/topology"
)

// Config scales the report generation.
type Config struct {
	// Quick shrinks the Monte Carlo iteration ladders so the whole
	// report generates in seconds (for tests and smoke runs); the
	// full report uses the paper's ranges.
	Quick bool
	// Seed drives every stochastic experiment.
	Seed uint64
}

// Generate writes the complete report to w.
func Generate(w io.Writer, cfg Config) error {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sections := []func(io.Writer, Config) error{
		header,
		sectionFigure1,
		sectionFigure2,
		sectionFigure3,
		sectionFleet,
		sectionRecovery,
		sectionFlow,
		sectionCoverage,
		sectionOverhead,
		sectionRails,
		sectionAvailability,
	}
	for _, s := range sections {
		if err := s(w, cfg); err != nil {
			return err
		}
	}
	return nil
}

func header(w io.Writer, cfg Config) error {
	mode := "full"
	if cfg.Quick {
		mode = "quick"
	}
	_, err := fmt.Fprintf(w, `# DRS reproduction report

Regenerated from scratch by this repository (%s mode, seed %d).
Paper: Chowdhury, Frieder, Luse, Wan — "Network Survivability Simulation
of a Commercially Deployed Dynamic Routing System Protocol",
IPDPS 2000 Workshops.

`, mode, cfg.Seed)
	return err
}

func codeBlock(w io.Writer, render func(io.Writer) error) error {
	if _, err := fmt.Fprintln(w, "```"); err != nil {
		return err
	}
	if err := render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "```")
	return err
}

func sectionFigure1(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Figure 1 — proactive probing cost")
	fmt.Fprintln(w)
	step := 2
	if cfg.Quick {
		step = 8
	}
	res, err := experiments.Figure1(costmodel.Defaults(), costmodel.FigureBudgets, 2, 128, step)
	if err != nil {
		return err
	}
	if err := codeBlock(w, res.WritePlot); err != nil {
		return err
	}
	params := costmodel.Defaults()
	rt, err := params.ResponseTime(90, 0.10)
	if err != nil {
		return err
	}
	maxN, err := params.MaxNodes(0.10, 1.0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPaper: \"ninety hosts are supported in less than 1 second with only\n")
	fmt.Fprintf(w, "10%% of the bandwidth usage.\" Measured: 90 hosts take %.3f s at 10%%;\n", rt)
	fmt.Fprintf(w, "the 1-second ceiling at 10%% is %d hosts.\n\n", maxN)
	return nil
}

func sectionFigure2(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Figure 2 — P[Success] converges to 1 (Equation 1)")
	fmt.Fprintln(w)
	fs := []int{2, 3, 4, 5, 6, 7, 8, 9, 10}
	if cfg.Quick {
		fs = []int{2, 4, 10}
	}
	res, err := experiments.Figure2(fs, 63)
	if err != nil {
		return err
	}
	if err := codeBlock(w, res.WritePlot); err != nil {
		return err
	}
	rows, err := experiments.Thresholds([]int{2, 3, 4}, 0.99, 200)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := codeBlock(w, func(w io.Writer) error {
		return experiments.WriteThresholds(w, rows, 0.99)
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPaper: thresholds at 18, 32 and 45 nodes — reproduced exactly.\n\n")
	return nil
}

func sectionFigure3(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Figure 3 — simulation converges to the model")
	fmt.Fprintln(w)
	mc := experiments.Figure3Defaults()
	mc.Seed = cfg.Seed
	if cfg.Quick {
		mc.Failures = []int{2, 6, 10}
		mc.NMax = 24
		mc.Iterations = []int64{10, 100, 1000, 10000}
	}
	res, err := experiments.Figure3(mc)
	if err != nil {
		return err
	}
	if err := codeBlock(w, res.WritePlot); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := codeBlock(w, res.WriteTable); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func sectionFleet(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## The 13% statistic — fleet failure log")
	fmt.Fprintln(w)
	fc := failure.DefaultFleetConfig()
	fc.Seed = cfg.Seed
	log, _, err := experiments.Fleet(fc)
	if err != nil {
		return err
	}
	if err := codeBlock(w, func(w io.Writer) error {
		return experiments.WriteFleet(w, log)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func sectionRecovery(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Recovery — proactive vs reactive vs static")
	fmt.Fprintln(w)
	for _, sc := range []experiments.Scenario{
		experiments.ScenarioNIC, experiments.ScenarioBackplane, experiments.ScenarioCrossRail,
	} {
		base := experiments.DefaultRecoveryConfig(runtime.ProtoDRS, sc)
		base.Seed = cfg.Seed
		if cfg.Quick {
			base.Duration = 25 * time.Second
		}
		results, err := experiments.CompareRecovery(base)
		if err != nil {
			return err
		}
		if err := codeBlock(w, func(w io.Writer) error {
			return experiments.WriteRecovery(w, results)
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func sectionFlow(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Connection level — \"applications are unaware\"")
	fmt.Fprintln(w)
	base := experiments.DefaultFlowRecoveryConfig(runtime.ProtoDRS, experiments.ScenarioNIC)
	base.Seed = cfg.Seed
	if cfg.Quick {
		base.Duration = 30 * time.Second
	}
	results, err := experiments.CompareFlowRecovery(base)
	if err != nil {
		return err
	}
	if err := codeBlock(w, func(w io.Writer) error {
		return experiments.WriteFlowRecovery(w, results)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func sectionCoverage(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Fault coverage — every 1- and 2-fault scenario, simulated")
	fmt.Fprintln(w)
	ccfg := experiments.DefaultCoverageConfig()
	ccfg.Seed = cfg.Seed
	if cfg.Quick {
		ccfg.Nodes = 5
	}
	res, err := experiments.FaultCoverage(ccfg)
	if err != nil {
		return err
	}
	if err := codeBlock(w, func(w io.Writer) error {
		return experiments.WriteCoverage(w, res)
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nEvery scenario's simulated outcome matched the analytic predicate\n")
	fmt.Fprintf(w, "(%d scenarios, %d inconsistencies).\n\n",
		res.Total.Scenarios, res.Total.Inconsistent)
	return nil
}

func sectionOverhead(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Empirical probe overhead vs the cost model")
	fmt.Fprintln(w)
	return codeBlock(w, func(w io.Writer) error {
		for _, switched := range []bool{false, true} {
			name := "hub   "
			if switched {
				name = "switch"
			}
			measured, predicted, err := experiments.ProbeOverhead(10, time.Second, 10*time.Second, switched)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s  measured %.4f%%   predicted %.4f%%\n",
				name, 100*measured, 100*predicted)
		}
		return nil
	})
}

func sectionRails(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "\n## Redundancy ablation — what the second network buys")
	fmt.Fprintln(w)
	iters := int64(200000)
	fs := []int{2, 3, 4}
	if cfg.Quick {
		iters = 20000
		fs = []int{2}
	}
	res, err := experiments.RailsComparison(12, []int{1, 2, 3}, fs, iters, cfg.Seed)
	if err != nil {
		return err
	}
	if err := codeBlock(w, res.WriteTable); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func sectionAvailability(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "## Availability — the time-based view")
	fmt.Fprintln(w)
	if err := codeBlock(w, func(w io.Writer) error {
		fmt.Fprintf(w, "%8s %12s %12s %8s %16s\n", "q", "pair", "all-pairs", "nines", "downtime/yr")
		for _, q := range []float64{0.001, 0.01, 0.05} {
			pair, err := availability.PSuccessIID(12, q)
			if err != nil {
				return err
			}
			all, err := availability.AllPairsIID(12, q)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8.3f %12.6f %12.6f %8d %16v\n",
				q, pair, all, availability.Nines(pair),
				availability.DowntimePerYear(1-pair).Round(time.Minute))
		}
		return nil
	}); err != nil {
		return err
	}

	acfg := experiments.DefaultAvailabilityConfig()
	acfg.Seed = cfg.Seed
	if cfg.Quick {
		acfg.Horizon = 30 * time.Minute
	}
	res, err := experiments.MeasureAvailability(acfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := codeBlock(w, func(w io.Writer) error {
		return experiments.WriteAvailability(w, res)
	}); err != nil {
		return err
	}

	// Cross-check one cell of the availability surface by simulation.
	est, ci, err := availability.EstimateIID(12, 0.05, false, mcIters(cfg), cfg.Seed)
	if err != nil {
		return err
	}
	analytic, err := availability.PSuccessIID(12, 0.05)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nIID cross-check at q=0.05, N=12: analytic %.5f, simulated %.5f (±%.5f).\n",
		analytic, est, ci)
	return nil
}

func mcIters(cfg Config) int64 {
	if cfg.Quick {
		return 20000
	}
	return 500000
}

// Headline verifies, programmatically, the four numbers the paper
// leads with; it returns an error if any fails to reproduce. The
// report tool runs it as a final self-check.
func Headline() error {
	for _, tc := range []struct{ f, want int }{{2, 18}, {3, 32}, {4, 45}} {
		n, err := survival.ThresholdFloat(tc.f, 0.99, 2, 200)
		if err != nil {
			return err
		}
		if n != tc.want {
			return fmt.Errorf("report: threshold f=%d reproduced as %d, paper says %d", tc.f, n, tc.want)
		}
	}
	rt, err := costmodel.Defaults().ResponseTime(90, 0.10)
	if err != nil {
		return err
	}
	if rt >= 1 {
		return fmt.Errorf("report: 90 hosts at 10%% take %.3fs, paper says < 1s", rt)
	}
	// Monte Carlo at 10k iterations within 0.01 of Equation 1.
	est, err := montecarlo.Estimate(montecarlo.Config{
		Cluster:    topology.Dual(18),
		Failures:   2,
		Iterations: 10000,
		Seed:       1,
	})
	if err != nil {
		return err
	}
	if diff := est.P - survival.PSuccessFloat(18, 2); diff > 0.01 || diff < -0.01 {
		return fmt.Errorf("report: Monte Carlo off by %v at 10k iterations", diff)
	}
	return nil
}
