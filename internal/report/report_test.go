package report

import (
	"strings"
	"testing"
)

func TestGenerateQuick(t *testing.T) {
	var sb strings.Builder
	if err := Generate(&sb, Config{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# DRS reproduction report",
		"## Figure 1",
		"## Figure 2",
		"## Figure 3",
		"## The 13% statistic",
		"## Recovery",
		"## Connection level",
		"## Empirical probe overhead",
		"## Redundancy ablation",
		"## Availability",
		"thresholds at 18, 32 and 45 nodes",
		"drs",
		"reactive",
		"static",
		"P[Success]",
		"measured",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Markdown code fences must balance.
	if n := strings.Count(out, "```"); n%2 != 0 {
		t.Fatalf("%d unbalanced code fences", n)
	}
	if len(out) < 4000 {
		t.Fatalf("report suspiciously short: %d bytes", len(out))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen := func() string {
		var sb strings.Builder
		if err := Generate(&sb, Config{Quick: true, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if gen() != gen() {
		t.Fatal("report not deterministic for a fixed seed")
	}
}

func TestHeadline(t *testing.T) {
	if err := Headline(); err != nil {
		t.Fatal(err)
	}
}
