// Package rng provides a small, fast, seedable pseudo-random number
// generator with support for independent substreams.
//
// Every stochastic experiment in this repository draws its randomness
// from this package so that runs are reproducible: the same seed yields
// the same results regardless of scheduling, and parallel workers use
// substreams split deterministically from a parent seed, so parallel
// and serial executions of an experiment agree exactly.
//
// The generator is xoshiro256** seeded through SplitMix64, the
// combination recommended by the xoshiro authors. It is not
// cryptographically secure; it is meant for simulation.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; give each goroutine its own Source via Split.
type Source struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Two Sources created
// with the same seed produce identical streams.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the Source to the state it would have when freshly
// created with New(seed).
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 cannot emit
	// four zero words in a row, so the state is always valid.
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives an independent substream labelled by id. Substreams
// with distinct labels are statistically independent of each other and
// of the parent, and splitting does not perturb the parent stream.
func (r *Source) Split(id uint64) *Source {
	// Mix the parent state with the label through SplitMix64 so that
	// (seed, id) pairs map to well-separated states.
	sm := r.s[0] ^ bits.RotateLeft64(r.s[2], 23) ^ (id * 0x9e3779b97f4a7c15)
	var child Source
	for i := range child.s {
		child.s[i] = splitMix64(&sm)
	}
	return &child
}

// Int63 returns a non-negative 63-bit integer. It exists so a Source
// can stand in where math/rand.Source semantics are expected.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Seed is a no-op provided for interface compatibility with
// math/rand.Source; use Reseed for deterministic reseeding.
func (r *Source) Seed(seed int64) { r.Reseed(uint64(seed)) }

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// The implementation uses Lemire's multiply-shift rejection method,
// which is unbiased.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the
// Fisher–Yates algorithm. swap exchanges elements i and j.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		swap(i, j)
	}
}

// SampleK fills dst with k distinct integers drawn uniformly from
// [0, n) in unspecified order, using Floyd's algorithm (O(k) expected
// time, no allocation beyond the scratch map when k is small relative
// to n). It panics if k > n or k != len(dst).
//
// This is the hot path of the Monte Carlo survivability simulation:
// choosing which f of the 2N+2 components fail.
func (r *Source) SampleK(dst []int, n int) {
	k := len(dst)
	if k > n {
		panic("rng: SampleK with k > n")
	}
	if k == 0 {
		return
	}
	// For dense samples a partial Fisher–Yates over a scratch slice
	// would win, but survivability runs have k ≤ 10 and n up to 130,
	// so Floyd's algorithm with a small linear-scan set is fastest and
	// allocation free.
	chosen := dst[:0]
	for j := n - k; j < n; j++ {
		t := int(r.Uint64n(uint64(j + 1)))
		if containsInt(chosen, t) {
			t = j
		}
		chosen = append(chosen, t)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), computed by inversion. Scale by 1/lambda for other rates.
func (r *Source) ExpFloat64() float64 {
	// Inversion: -ln(U) with U in (0, 1]. Use 1 - Float64() so the
	// argument is never zero.
	u := 1 - r.Float64()
	return -math.Log(u)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
