package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	before := *parent // copy state
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if *parent != before {
		t.Fatal("Split perturbed the parent state")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("substreams 1 and 2 start identically")
	}
	// Same label twice must give the same substream.
	c1b := parent.Split(1)
	c1.Reseed(0) // scramble c1; recreate from label instead
	c1 = parent.Split(1)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatalf("Split(1) not reproducible at step %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check on a small modulus.
	r := New(12345)
	const n, iters = 10, 100000
	counts := make([]int, n)
	for i := 0; i < iters; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(iters) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	const iters = 200000
	sum := 0.0
	for i := 0; i < iters; i++ {
		sum += r.Float64()
	}
	mean := sum / iters
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleKDistinctAndInRange(t *testing.T) {
	r := New(21)
	check := func(k, n int) bool {
		if k < 0 || n < k {
			return true // constrained by generator below
		}
		dst := make([]int, k)
		r.SampleK(dst, n)
		seen := map[int]bool{}
		for _, v := range dst {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Values: nil}
	if err := quick.Check(func(k8, n8 uint8) bool {
		n := int(n8%130) + 1
		k := int(k8) % (n + 1)
		return check(k, n)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKCoverage(t *testing.T) {
	// Every element of [0,n) must be reachable.
	r := New(31)
	const n, k, iters = 12, 4, 20000
	hit := make([]int, n)
	dst := make([]int, k)
	for i := 0; i < iters; i++ {
		r.SampleK(dst, n)
		for _, v := range dst {
			hit[v]++
		}
	}
	want := float64(iters*k) / n
	for v, c := range hit {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("component %d sampled %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(k>n) did not panic")
		}
	}()
	New(1).SampleK(make([]int, 5), 4)
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	const iters = 200000
	sum := 0.0
	for i := 0; i < iters; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / iters
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const iters = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < iters; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / iters
	variance := sumSq/iters - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkSampleK(b *testing.B) {
	r := New(1)
	dst := make([]int, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SampleK(dst, 130)
	}
}
