package routetable

import (
	"time"

	"drsnet/internal/overload"
)

// Discovery budgeting. Every node that loses its last direct rail to
// a peer broadcasts a route query on every rail, and a correlated
// failure storm makes the whole cluster do it at once — plus retries
// each query timeout while senders wait. A Table can carry a token
// bucket that admits discovery broadcasts at a configured rate; the
// owning protocol defers (queues) or sheds what the bucket refuses.

// SetQueryBudget installs (or, with nil, removes) the discovery
// token bucket. Not goroutine-safe; call under the owning protocol's
// lock, like every other Table method.
func (t *Table) SetQueryBudget(b *overload.Bucket) { t.queryBudget = b }

// AllowQuery spends one discovery token, reporting false when the
// budget is exhausted. Without an installed budget every discovery
// is admitted.
func (t *Table) AllowQuery(now time.Duration) bool {
	return t.queryBudget.Take(now)
}

// QueryTokens reports the tokens currently available (-1 when
// unbudgeted), for status gauges.
func (t *Table) QueryTokens(now time.Duration) float64 {
	return t.queryBudget.Tokens(now)
}
