// Package routetable holds the route state of a DRS-style daemon: the
// per-destination route, the record of completed repairs (the unit of
// every recovery-latency experiment), and the lifecycle of relay
// discoveries — the query sequence numbers, the one-in-flight-per-
// target rule, the offer matching, and the duplicate-query dedupe
// cache.
//
// The table is pure bookkeeping: it sends nothing and schedules
// nothing. The owning protocol serializes access under its own lock
// and drives timers itself, which keeps the deterministic simulation
// schedule entirely in the protocol's hands.
package routetable

import (
	"fmt"
	"time"

	"drsnet/internal/overload"
)

// Kind classifies an installed route. Package core exports it as
// RouteKind.
type Kind int

// Route kinds.
const (
	// None means the destination is currently unreachable (or
	// discovery is in flight).
	None Kind = iota
	// Direct sends straight to the destination on a rail.
	Direct
	// Relay sends through another server that can reach the
	// destination.
	Relay
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Direct:
		return "direct"
	case Relay:
		return "relay"
	default:
		// core's exported alias for this type is RouteKind; keep its
		// diagnostic format.
		return fmt.Sprintf("RouteKind(%d)", int(k))
	}
}

// Route describes the current path to one destination.
type Route struct {
	Kind Kind
	Rail int // rail the first hop uses
	Via  int // next-hop node (== destination for direct routes)
}

// Repair records one completed route repair.
type Repair struct {
	Peer       int
	LostAt     time.Duration // when the previous route became unusable
	RepairedAt time.Duration // when the replacement was installed
	Route      Route         // the replacement
}

// Latency returns the repair latency.
func (r Repair) Latency() time.Duration { return r.RepairedAt - r.LostAt }

// Discovery is one in-flight relay discovery.
type Discovery struct {
	// Seq is the query sequence the answering offer must echo.
	Seq uint32
	// LostAt anchors the repair-latency measurement; a retry after a
	// timeout carries the original loss time forward.
	LostAt time.Duration
	// Cancel stops the discovery's timeout timer.
	Cancel func() bool
}

// Table is one node's route state.
type Table struct {
	routes  []Route
	repairs []Repair
	// pending discoveries by target (at most one per target).
	pending  map[int]*Discovery
	querySeq uint32
	// seen dedupes heard queries by (origin, seq) across rails and
	// rebroadcasts.
	seen map[uint64]time.Duration
	// queryBudget, when non-nil, rate-limits discovery broadcasts
	// (see budget.go). Nil means unbudgeted.
	queryBudget *overload.Bucket
}

// New returns an empty table for a cluster of nodes.
func New(nodes int) *Table {
	return &Table{
		routes:  make([]Route, nodes),
		pending: make(map[int]*Discovery),
		seen:    make(map[uint64]time.Duration),
	}
}

// Route returns the current route to dst.
func (t *Table) Route(dst int) Route { return t.routes[dst] }

// SetRoute overwrites the route to dst without recording a repair
// (initial installs and route loss).
func (t *Table) SetRoute(dst int, rt Route) { t.routes[dst] = rt }

// Install records rt as the route to dst: it completes any pending
// discovery for dst (cancelling its timer), and appends a Repair whose
// LostAt comes from that discovery — or now, for a route replaced
// while still usable. It reports false, changing nothing, when rt is
// already installed.
func (t *Table) Install(dst int, rt Route, now time.Duration) bool {
	if t.routes[dst] == rt {
		return false
	}
	t.routes[dst] = rt
	lostAt := now
	if q, ok := t.pending[dst]; ok {
		lostAt = q.LostAt
		if q.Cancel != nil {
			q.Cancel()
		}
		delete(t.pending, dst)
	}
	t.repairs = append(t.repairs, Repair{Peer: dst, LostAt: lostAt, RepairedAt: now, Route: rt})
	return true
}

// Repairs returns the completed repairs in order.
func (t *Table) Repairs() []Repair {
	return append([]Repair(nil), t.repairs...)
}

// RepairCount returns the number of completed repairs without copying
// the record (status snapshots poll this).
func (t *Table) RepairCount() int { return len(t.repairs) }

// Pending returns the in-flight discovery for dst, if any.
func (t *Table) Pending(dst int) (*Discovery, bool) {
	q, ok := t.pending[dst]
	return q, ok
}

// Begin starts a discovery for dst with the next query sequence. It
// returns nil while another discovery for dst is in flight (one per
// target). The caller fills in Cancel after arming its timer.
func (t *Table) Begin(dst int, now time.Duration) *Discovery {
	if _, ok := t.pending[dst]; ok {
		return nil
	}
	t.querySeq++
	q := &Discovery{Seq: t.querySeq, LostAt: now}
	t.pending[dst] = q
	return q
}

// Abandon removes the discovery for dst if it still carries seq,
// returning it; a discovery that was already answered (or replaced by
// a newer one) is left alone.
func (t *Table) Abandon(dst int, seq uint32) (*Discovery, bool) {
	q, ok := t.pending[dst]
	if !ok || q.Seq != seq {
		return nil, false
	}
	delete(t.pending, dst)
	return q, true
}

// Drop removes dst's route and cancels its discovery (peer removal).
func (t *Table) Drop(dst int) {
	t.routes[dst] = Route{}
	if q, ok := t.pending[dst]; ok {
		if q.Cancel != nil {
			q.Cancel()
		}
		delete(t.pending, dst)
	}
}

// ViaRelay returns, in ascending destination order, every destination
// whose installed route relays through via. Callers tear these down
// when via crashes or departs — a relay route is only as alive as the
// daemon behind it.
func (t *Table) ViaRelay(via int) []int {
	var out []int
	for dst, rt := range t.routes {
		if dst != via && rt.Kind == Relay && rt.Via == via {
			out = append(out, dst)
		}
	}
	return out
}

// Cancels returns the cancel functions of every in-flight discovery,
// for a stopping daemon to run outside its lock.
func (t *Table) Cancels() []func() bool {
	var out []func() bool
	for _, q := range t.pending {
		out = append(out, q.Cancel)
	}
	return out
}

// seenGCThreshold bounds the dedupe cache; past it, entries older than
// the window are collected.
const seenGCThreshold = 4096

// SeenRecently reports whether the (origin, seq) query was already
// heard within window of now, recording it otherwise. The cache is
// garbage-collected once it holds seenGCThreshold entries.
func (t *Table) SeenRecently(origin uint16, seq uint32, now, window time.Duration) bool {
	key := uint64(origin)<<32 | uint64(seq)
	if at, ok := t.seen[key]; ok && now-at < window {
		return true
	}
	t.seen[key] = now
	if len(t.seen) >= seenGCThreshold {
		for k, at := range t.seen {
			if now-at >= window {
				delete(t.seen, k)
			}
		}
	}
	return false
}

// SeenSize returns the dedupe cache population (testing hook).
func (t *Table) SeenSize() int { return len(t.seen) }
