package routetable

import (
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", Direct: "direct", Relay: "relay"} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(9).String() != "RouteKind(9)" {
		t.Errorf("invalid kind prints %q", Kind(9).String())
	}
}

func TestInstallRecordsRepair(t *testing.T) {
	tbl := New(4)
	if rt := tbl.Route(2); rt.Kind != None {
		t.Fatalf("initial route = %+v", rt)
	}
	rt := Route{Kind: Direct, Rail: 1, Via: 2}
	if !tbl.Install(2, rt, 5*time.Second) {
		t.Fatal("install reported no change")
	}
	if tbl.Install(2, rt, 6*time.Second) {
		t.Fatal("re-install of same route reported a change")
	}
	reps := tbl.Repairs()
	if len(reps) != 1 {
		t.Fatalf("repairs = %v", reps)
	}
	r := reps[0]
	if r.Peer != 2 || r.LostAt != 5*time.Second || r.RepairedAt != 5*time.Second || r.Route != rt {
		t.Fatalf("repair = %+v", r)
	}
	if r.Latency() != 0 {
		t.Fatalf("latency = %v", r.Latency())
	}
	// Repairs returns a copy.
	reps[0].Peer = 99
	if tbl.Repairs()[0].Peer != 2 {
		t.Fatal("Repairs aliases internal slice")
	}
}

func TestDiscoveryLifecycle(t *testing.T) {
	tbl := New(4)
	canceled := 0
	q := tbl.Begin(3, 2*time.Second)
	if q == nil || q.Seq != 1 {
		t.Fatalf("first discovery = %+v", q)
	}
	q.Cancel = func() bool { canceled++; return true }
	if tbl.Begin(3, 3*time.Second) != nil {
		t.Fatal("second discovery for same target allowed")
	}
	if other := tbl.Begin(1, 3*time.Second); other == nil || other.Seq != 2 {
		t.Fatalf("discovery for other target = %+v", other)
	}

	// Installing completes the discovery: timer canceled, LostAt kept.
	if !tbl.Install(3, Route{Kind: Relay, Rail: 0, Via: 1}, 4*time.Second) {
		t.Fatal("install failed")
	}
	if canceled != 1 {
		t.Fatalf("cancel calls = %d", canceled)
	}
	if _, ok := tbl.Pending(3); ok {
		t.Fatal("discovery survived install")
	}
	r := tbl.Repairs()[0]
	if r.LostAt != 2*time.Second || r.RepairedAt != 4*time.Second || r.Latency() != 2*time.Second {
		t.Fatalf("repair = %+v", r)
	}

	// Abandon only matches the live sequence.
	if _, ok := tbl.Abandon(1, 99); ok {
		t.Fatal("abandon with wrong seq succeeded")
	}
	if q, ok := tbl.Abandon(1, 2); !ok || q.Seq != 2 {
		t.Fatalf("abandon = %+v, %v", q, ok)
	}
	if _, ok := tbl.Pending(1); ok {
		t.Fatal("discovery survived abandon")
	}
}

func TestDropCancelsDiscovery(t *testing.T) {
	tbl := New(3)
	tbl.SetRoute(1, Route{Kind: Direct, Rail: 0, Via: 1})
	canceled := false
	q := tbl.Begin(1, time.Second)
	q.Cancel = func() bool { canceled = true; return true }
	tbl.Drop(1)
	if !canceled {
		t.Fatal("drop did not cancel the discovery")
	}
	if rt := tbl.Route(1); rt != (Route{}) {
		t.Fatalf("route after drop = %+v", rt)
	}
	if got := tbl.Cancels(); len(got) != 0 {
		t.Fatalf("cancels after drop = %d", len(got))
	}
}

func TestSeenRecently(t *testing.T) {
	tbl := New(2)
	window := 10 * time.Second
	if tbl.SeenRecently(1, 7, time.Second, window) {
		t.Fatal("fresh query reported seen")
	}
	if !tbl.SeenRecently(1, 7, 2*time.Second, window) {
		t.Fatal("duplicate within window not deduped")
	}
	// Outside the window the same key is fresh again.
	if tbl.SeenRecently(1, 7, 13*time.Second, window) {
		t.Fatal("expired entry still deduping")
	}
	// Distinct (origin, seq) pairs never collide.
	if tbl.SeenRecently(2, 7, time.Second, window) || tbl.SeenRecently(1, 8, time.Second, window) {
		t.Fatal("distinct queries collided")
	}
}

func TestSeenGC(t *testing.T) {
	tbl := New(2)
	window := 10 * time.Second
	// Fill past the GC threshold with entries that are already stale by
	// the time the threshold trips.
	for i := 0; i < seenGCThreshold; i++ {
		tbl.SeenRecently(1, uint32(i), time.Duration(i)*time.Second, window)
	}
	if tbl.SeenSize() >= seenGCThreshold {
		t.Fatalf("cache not collected: %d entries", tbl.SeenSize())
	}
}

func TestViaRelay(t *testing.T) {
	tbl := New(6)
	tbl.SetRoute(1, Route{Kind: Direct, Rail: 0, Via: 1})
	tbl.SetRoute(2, Route{Kind: Relay, Rail: 1, Via: 4})
	tbl.SetRoute(3, Route{Kind: Relay, Rail: 0, Via: 4})
	tbl.SetRoute(5, Route{Kind: Relay, Rail: 0, Via: 2})
	got := tbl.ViaRelay(4)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("ViaRelay(4) = %v, want [2 3]", got)
	}
	if got := tbl.ViaRelay(1); got != nil {
		// Node 1 is a direct next hop, not a relay.
		t.Fatalf("ViaRelay(1) = %v, want none", got)
	}
	// A relay route TO the relay itself is excluded: tearing it down is
	// the caller's direct-loss path, not relay purging.
	tbl.SetRoute(4, Route{Kind: Relay, Rail: 0, Via: 4})
	got = tbl.ViaRelay(4)
	if len(got) != 2 {
		t.Fatalf("ViaRelay(4) with self-route = %v, want [2 3]", got)
	}
}
