package routing

import "testing"

// FuzzUnmarshalData checks the data-envelope decoder never panics and
// that accepted headers round-trip.
func FuzzUnmarshalData(f *testing.F) {
	f.Add([]byte{})
	f.Add(MarshalData(DataHeader{Origin: 1, Final: 2, TTL: 3, Seq: 4}, []byte("x")))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, data, err := UnmarshalData(b)
		if err != nil {
			return
		}
		out := MarshalData(h, data)
		if len(out) != len(b) {
			t.Fatalf("round trip changed length: %d -> %d", len(b), len(out))
		}
		for i := range out {
			if out[i] != b[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}

// FuzzUnmarshalAdvert checks the advertisement decoder never panics
// and rejects or round-trips every input.
func FuzzUnmarshalAdvert(f *testing.F) {
	f.Add([]byte{})
	seed, _ := MarshalAdvert(Advert{Reachable: []uint16{1, 9, 300}})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := UnmarshalAdvert(b)
		if err != nil {
			return
		}
		out, err := MarshalAdvert(a)
		if err != nil {
			t.Fatalf("re-marshal of accepted advert failed: %v", err)
		}
		// The decoder ignores trailing bytes, so compare prefixes.
		if len(out) > len(b) {
			t.Fatalf("re-marshal grew: %d -> %d", len(b), len(out))
		}
		for i := range out {
			if out[i] != b[i] {
				t.Fatalf("round trip changed byte %d", i)
			}
		}
	})
}
