package routing

import (
	"fmt"
	"sync"
	"time"

	"drsnet/internal/dataplane"
	"drsnet/internal/linkmon"
	"drsnet/internal/metrics"
	"drsnet/internal/routing/wire"
	"drsnet/internal/trace"
)

// LinkState is an OSPF-style baseline, the second traditional protocol
// the paper names ("RIP, OSPF, EGP and BGP are routing solutions to
// many different routing problems, however, they do not address the
// needs of a high availability server cluster environment"). Like
// OSPF it builds adjacencies from periodic hellos, floods link-state
// advertisements, and routes over shortest paths computed from the
// link-state database. Like every reactive protocol, it discovers
// failures only when a timer expires: a dead neighbor is noticed after
// the router-dead interval, re-flooded, and routed around — faster
// than RIP-style route timeouts, still far slower than the DRS's
// proactive link checks.
//
// The implementation composes the shared building blocks: hellos ride
// on a linkmon.Rounds loop, adjacency liveness is a linkmon.Deadlines
// matrix, LSAs travel in the wire package's codec, and datagrams flow
// through a dataplane.Plane. Only the SPF computation and the flooding
// discipline are LinkState's own.
type LinkState struct {
	cfg   LinkStateConfig
	tr    Transport
	clock Clock
	mset  *metrics.Set

	mu      sync.Mutex
	started bool
	stopped bool
	deliver func(src int, data []byte)
	lsaSeq  uint32

	// adjacency holds the expiry of each hello-learned (peer, rail)
	// adjacency.
	adjacency *linkmon.Deadlines
	// lsdb[origin] is the freshest LSA heard (nil = none).
	lsdb []*lsa
	// routes[dst] is the SPF result: first hop and rail.
	routes []lsRoute

	plane  *dataplane.Plane
	rounds *linkmon.Rounds
}

type lsRoute struct {
	valid bool
	via   int
	rail  int
}

// lsa is a database entry: the advertisement itself plus when this
// router heard it (for aging).
type lsa struct {
	wire.LSA
	heardAt time.Duration
}

// LinkStateConfig tunes the OSPF-lite baseline.
type LinkStateConfig struct {
	// HelloInterval is the adjacency heartbeat (OSPF default 10 s;
	// LAN-scaled default 1 s).
	HelloInterval time.Duration
	// DeadInterval declares a silent neighbor down (OSPF uses
	// 4 × hello; same default here).
	DeadInterval time.Duration
	// LSAMaxAge expires database entries that were never refreshed.
	LSAMaxAge time.Duration
	// DataTTL bounds forwarding hops.
	DataTTL int
	// QueueCapacity, when positive, buffers up to that many datagrams
	// per destination while SPF has no route and flushes them when one
	// installs; overflow evicts the oldest (counted by queue.overflow).
	// Zero — the default — keeps the traditional baseline behavior:
	// SendData fails immediately with ErrNoRoute.
	QueueCapacity int
	// Trace receives protocol events if non-nil.
	Trace *trace.Log
}

// DefaultLinkStateConfig returns the LAN-scaled OSPF-like defaults.
func DefaultLinkStateConfig() LinkStateConfig {
	return LinkStateConfig{
		HelloInterval: time.Second,
		DeadInterval:  4 * time.Second,
		LSAMaxAge:     30 * time.Second,
		DataTTL:       8,
	}
}

func (c *LinkStateConfig) normalize() error {
	if c.HelloInterval <= 0 {
		return fmt.Errorf("routing: hello interval must be positive")
	}
	if c.DeadInterval == 0 {
		c.DeadInterval = 4 * c.HelloInterval
	}
	if c.DeadInterval < c.HelloInterval {
		return fmt.Errorf("routing: dead interval below hello interval")
	}
	if c.LSAMaxAge == 0 {
		c.LSAMaxAge = 30 * c.HelloInterval
	}
	if c.LSAMaxAge < c.DeadInterval {
		return fmt.Errorf("routing: LSA max age below dead interval")
	}
	if c.DataTTL <= 0 {
		c.DataTTL = 8
	}
	if c.QueueCapacity < 0 {
		return fmt.Errorf("routing: negative queue capacity")
	}
	return nil
}

// NewLinkState returns an OSPF-lite router over tr.
func NewLinkState(tr Transport, clock Clock, cfg LinkStateConfig) (*LinkState, error) {
	if tr == nil || clock == nil {
		return nil, fmt.Errorf("routing: nil transport or clock")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	mset := metrics.NewSet()
	ls := &LinkState{
		cfg:       cfg,
		tr:        tr,
		clock:     clock,
		mset:      mset,
		adjacency: linkmon.NewDeadlines(tr.Nodes(), tr.Rails()),
		lsdb:      make([]*lsa, tr.Nodes()),
		routes:    make([]lsRoute, tr.Nodes()),
		plane: dataplane.New(tr.Node(), tr.Nodes(), cfg.DataTTL,
			cfg.QueueCapacity, mset.Counter(CtrQueueOverflow)),
		rounds: linkmon.NewRounds(clock),
	}
	return ls, nil
}

// Start implements Router.
func (ls *LinkState) Start() error {
	ls.mu.Lock()
	if ls.started {
		ls.mu.Unlock()
		return fmt.Errorf("routing: link-state router started twice")
	}
	ls.started = true
	ls.mu.Unlock()
	ls.tr.SetReceiver(ls.onFrame)
	ls.rounds.Run(ls.cfg.HelloInterval, ls.helloRound)
	return nil
}

// Stop implements Router.
func (ls *LinkState) Stop() {
	ls.mu.Lock()
	ls.stopped = true
	ls.mu.Unlock()
	ls.rounds.Stop()
}

// SetDeliverFunc implements Router.
func (ls *LinkState) SetDeliverFunc(fn func(src int, data []byte)) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.deliver = fn
}

// Metrics implements Router.
func (ls *LinkState) Metrics() *metrics.Set { return ls.mset }

// helloRound is the periodic round body: send hellos, expire
// adjacencies and stale LSAs, refresh our own LSA. The Rounds loop
// reschedules it after it returns.
func (ls *LinkState) helloRound() {
	ls.mu.Lock()
	if ls.stopped {
		ls.mu.Unlock()
		return
	}
	now := ls.clock.Now()

	// Expire adjacencies that have gone silent; note whether anything
	// changed so the LSA gets re-originated.
	changed := ls.adjacency.Sweep(now, func(peer, rail int) {
		ls.event(trace.Event{At: now, Node: ls.tr.Node(), Kind: trace.KindLinkDown,
			Peer: peer, Rail: rail, Detail: "adjacency expired"})
	})
	// Age out LSDB entries (other routers crashed without retracting).
	for origin, entry := range ls.lsdb {
		if entry != nil && now-entry.heardAt > ls.cfg.LSAMaxAge {
			ls.lsdb[origin] = nil
			changed = true
		}
	}
	ls.mu.Unlock()

	// Hellos on every rail.
	hello := Envelope(ProtoControl, wire.MarshalLSHello())
	for rail := 0; rail < ls.tr.Rails(); rail++ {
		_ = ls.tr.Send(rail, Broadcast, hello)
	}
	ls.mset.Counter(CtrProbesSent).Inc() // hellos are this protocol's probes

	// Re-originate our LSA every round (it doubles as the refresh),
	// and recompute routes if the topology view moved.
	ls.originateLSA()
	if changed {
		ls.recompute()
	}
}

// originateLSA floods this node's current adjacency list.
func (ls *LinkState) originateLSA() {
	ls.mu.Lock()
	now := ls.clock.Now()
	ls.lsaSeq++
	entry := &lsa{LSA: wire.LSA{Origin: uint16(ls.tr.Node()), Seq: ls.lsaSeq}, heardAt: now}
	for peer := 0; peer < ls.tr.Nodes(); peer++ {
		for rail := 0; rail < ls.tr.Rails(); rail++ {
			if ls.adjacency.Alive(peer, rail, now) {
				entry.Neighbors = append(entry.Neighbors,
					wire.Adjacency{Node: uint16(peer), Rail: uint16(rail)})
			}
		}
	}
	ls.lsdb[ls.tr.Node()] = entry
	payload := Envelope(ProtoControl, wire.MarshalLSA(entry.LSA))
	ls.mu.Unlock()

	for rail := 0; rail < ls.tr.Rails(); rail++ {
		_ = ls.tr.Send(rail, Broadcast, payload)
	}
	ls.mset.Counter(CtrAdvertsSent).Inc()
}

func (ls *LinkState) onFrame(rail, src int, payload []byte) {
	proto, body, err := SplitEnvelope(payload)
	if err != nil {
		return
	}
	switch proto {
	case ProtoControl:
		if len(body) == 0 {
			return
		}
		switch body[0] {
		case wire.MsgLSHello:
			ls.onHello(rail, src)
		case wire.MsgLSA:
			ls.onLSA(body)
		}
	case ProtoData:
		ls.onData(body)
	}
}

func (ls *LinkState) onHello(rail, src int) {
	ls.mu.Lock()
	if ls.stopped || src == ls.tr.Node() {
		ls.mu.Unlock()
		return
	}
	now := ls.clock.Now()
	wasDown := ls.adjacency.Refresh(src, rail, now, now+ls.cfg.DeadInterval)
	ls.mu.Unlock()
	if wasDown {
		ls.event(trace.Event{At: now, Node: ls.tr.Node(), Kind: trace.KindLinkUp,
			Peer: src, Rail: rail, Detail: "adjacency formed"})
		// Topology changed from our vantage point: re-originate and
		// recompute immediately (OSPF's event-driven flooding).
		ls.originateLSA()
		ls.recompute()
	}
}

func (ls *LinkState) onLSA(body []byte) {
	entry, err := wire.UnmarshalLSA(body)
	if err != nil {
		return
	}
	origin := int(entry.Origin)
	if origin < 0 || origin >= ls.tr.Nodes() || origin == ls.tr.Node() {
		return
	}
	ls.mset.Counter(CtrAdvertsRecv).Inc()
	ls.mu.Lock()
	if ls.stopped {
		ls.mu.Unlock()
		return
	}
	existing := ls.lsdb[origin]
	if existing != nil && entry.Seq <= existing.Seq {
		ls.mu.Unlock()
		return // stale or duplicate: do not re-flood (flooding terminates)
	}
	ls.lsdb[origin] = &lsa{LSA: entry, heardAt: ls.clock.Now()}
	payload := Envelope(ProtoControl, wire.MarshalLSA(entry))
	ls.mu.Unlock()

	// Re-flood the news on every rail so it crosses rail boundaries.
	for rail := 0; rail < ls.tr.Rails(); rail++ {
		_ = ls.tr.Send(rail, Broadcast, payload)
	}
	ls.recompute()
}

// recompute runs SPF over the LSDB. An edge (a, b, rail) exists only
// when both endpoints advertise it (OSPF's bidirectionality check).
func (ls *LinkState) recompute() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	n := ls.tr.Nodes()
	self := ls.tr.Node()
	now := ls.clock.Now()

	claims := func(a, b, rail int) bool {
		if a == self {
			return ls.adjacency.Alive(b, rail, now)
		}
		e := ls.lsdb[a]
		if e == nil {
			return false
		}
		for _, nb := range e.Neighbors {
			if int(nb.Node) == b && int(nb.Rail) == rail {
				return true
			}
		}
		return false
	}

	// BFS from self over bidirectional edges; hop count is the metric
	// (all links are equal-cost 100 Mb/s).
	type hop struct {
		via  int
		rail int
	}
	first := make([]hop, n)
	visited := make([]bool, n)
	visited[self] = true
	queue := []int{self}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := 0; next < n; next++ {
			if visited[next] || next == cur {
				continue
			}
			for rail := 0; rail < ls.tr.Rails(); rail++ {
				if claims(cur, next, rail) && claims(next, cur, rail) {
					visited[next] = true
					if cur == self {
						first[next] = hop{via: next, rail: rail}
					} else {
						first[next] = first[cur]
					}
					queue = append(queue, next)
					break
				}
			}
		}
	}
	for dst := 0; dst < n; dst++ {
		if dst == self {
			continue
		}
		prev := ls.routes[dst]
		if visited[dst] {
			ls.routes[dst] = lsRoute{valid: true, via: first[dst].via, rail: first[dst].rail}
		} else {
			ls.routes[dst] = lsRoute{}
		}
		if prev != ls.routes[dst] {
			ls.mset.Counter(CtrRepairs).Inc()
			ls.event(trace.Event{At: now, Node: self, Kind: trace.KindRouteInstalled,
				Peer: dst, Rail: ls.routes[dst].rail,
				Detail: fmt.Sprintf("spf via %d (valid=%v)", ls.routes[dst].via, ls.routes[dst].valid)})
			// A freshly usable route releases any datagrams that queued
			// while SPF had nowhere to send them (queueing mode only).
			if rt := ls.routes[dst]; rt.valid {
				for _, frame := range ls.plane.Flush(dst) {
					ls.mset.Counter(CtrDataSent).Inc()
					_ = ls.tr.Send(rt.rail, rt.via, frame)
				}
			}
		}
	}
}

// SendData implements Router.
func (ls *LinkState) SendData(dst int, data []byte) error {
	ls.mu.Lock()
	if ls.stopped {
		ls.mu.Unlock()
		return ErrStopped
	}
	if dst < 0 || dst >= ls.tr.Nodes() || dst == ls.tr.Node() {
		ls.mu.Unlock()
		return fmt.Errorf("routing: bad destination %d", dst)
	}
	rt := ls.routes[dst]
	if !rt.valid {
		if ls.plane.CanQueue() {
			ls.plane.Enqueue(dst, ls.plane.NewFrame(dst, data))
			ls.mu.Unlock()
			return nil
		}
		ls.mu.Unlock()
		ls.mset.Counter(CtrDataNoRoute).Inc()
		return ErrNoRoute
	}
	frame := ls.plane.NewFrame(dst, data)
	ls.mu.Unlock()
	ls.mset.Counter(CtrDataSent).Inc()
	return ls.tr.Send(rt.rail, rt.via, frame)
}

func (ls *LinkState) onData(body []byte) {
	h, data, act := ls.plane.Classify(body)
	switch act {
	case dataplane.Deliver:
		ls.mu.Lock()
		deliver := ls.deliver
		stopped := ls.stopped
		ls.mu.Unlock()
		if stopped || deliver == nil {
			return
		}
		ls.mset.Counter(CtrDataDelivered).Inc()
		deliver(int(h.Origin), data)
	case dataplane.Drop:
		ls.mset.Counter(CtrDataDropped).Inc()
	case dataplane.Forward:
		final := int(h.Final)
		ls.mu.Lock()
		rt := ls.routes[final]
		stopped := ls.stopped
		ls.mu.Unlock()
		if stopped || !rt.valid {
			ls.mset.Counter(CtrDataDropped).Inc()
			return
		}
		ls.mset.Counter(CtrDataForwarded).Inc()
		_ = ls.tr.Send(rt.rail, rt.via, dataplane.Frame(h, data))
	}
}

// RouteVia reports the current first hop toward dst (testing hook).
func (ls *LinkState) RouteVia(dst int) (via, rail int, ok bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	rt := ls.routes[dst]
	return rt.via, rt.rail, rt.valid
}

func (ls *LinkState) event(e trace.Event) {
	if ls.cfg.Trace != nil {
		ls.cfg.Trace.Append(e)
	}
}

var _ Router = (*LinkState)(nil)
