package routing

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"drsnet/internal/metrics"
	"drsnet/internal/trace"
)

// LinkState is an OSPF-style baseline, the second traditional protocol
// the paper names ("RIP, OSPF, EGP and BGP are routing solutions to
// many different routing problems, however, they do not address the
// needs of a high availability server cluster environment"). Like
// OSPF it builds adjacencies from periodic hellos, floods link-state
// advertisements, and routes over shortest paths computed from the
// link-state database. Like every reactive protocol, it discovers
// failures only when a timer expires: a dead neighbor is noticed after
// the router-dead interval, re-flooded, and routed around — faster
// than RIP-style route timeouts, still far slower than the DRS's
// proactive link checks.
type LinkState struct {
	cfg   LinkStateConfig
	tr    Transport
	clock Clock
	mset  *metrics.Set

	mu      sync.Mutex
	started bool
	stopped bool
	deliver func(src int, data []byte)
	seq     uint32 // data seq
	lsaSeq  uint32

	// adjacency[peer][rail] is the expiry of the hello-learned
	// adjacency.
	adjacency [][]time.Duration
	// lsdb[origin] is the freshest LSA heard (nil = none).
	lsdb []*lsa
	// routes[dst] is the SPF result: first hop and rail (nil Kind
	// semantics via valid flag).
	routes []lsRoute

	helloCancel func() bool
}

type lsRoute struct {
	valid bool
	via   int
	rail  int
}

type lsa struct {
	origin  int
	seq     uint32
	heardAt time.Duration
	// neighbors[i] is an (node, rail) adjacency claimed by origin.
	neighbors []lsNeighbor
}

type lsNeighbor struct {
	node int
	rail int
}

// LinkStateConfig tunes the OSPF-lite baseline.
type LinkStateConfig struct {
	// HelloInterval is the adjacency heartbeat (OSPF default 10 s;
	// LAN-scaled default 1 s).
	HelloInterval time.Duration
	// DeadInterval declares a silent neighbor down (OSPF uses
	// 4 × hello; same default here).
	DeadInterval time.Duration
	// LSAMaxAge expires database entries that were never refreshed.
	LSAMaxAge time.Duration
	// DataTTL bounds forwarding hops.
	DataTTL int
	// Trace receives protocol events if non-nil.
	Trace *trace.Log
}

// DefaultLinkStateConfig returns the LAN-scaled OSPF-like defaults.
func DefaultLinkStateConfig() LinkStateConfig {
	return LinkStateConfig{
		HelloInterval: time.Second,
		DeadInterval:  4 * time.Second,
		LSAMaxAge:     30 * time.Second,
		DataTTL:       8,
	}
}

func (c *LinkStateConfig) normalize() error {
	if c.HelloInterval <= 0 {
		return fmt.Errorf("routing: hello interval must be positive")
	}
	if c.DeadInterval == 0 {
		c.DeadInterval = 4 * c.HelloInterval
	}
	if c.DeadInterval < c.HelloInterval {
		return fmt.Errorf("routing: dead interval below hello interval")
	}
	if c.LSAMaxAge == 0 {
		c.LSAMaxAge = 30 * c.HelloInterval
	}
	if c.LSAMaxAge < c.DeadInterval {
		return fmt.Errorf("routing: LSA max age below dead interval")
	}
	if c.DataTTL <= 0 {
		c.DataTTL = 8
	}
	return nil
}

// NewLinkState returns an OSPF-lite router over tr.
func NewLinkState(tr Transport, clock Clock, cfg LinkStateConfig) (*LinkState, error) {
	if tr == nil || clock == nil {
		return nil, fmt.Errorf("routing: nil transport or clock")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ls := &LinkState{
		cfg:       cfg,
		tr:        tr,
		clock:     clock,
		mset:      metrics.NewSet(),
		adjacency: make([][]time.Duration, tr.Nodes()),
		lsdb:      make([]*lsa, tr.Nodes()),
		routes:    make([]lsRoute, tr.Nodes()),
	}
	for i := range ls.adjacency {
		ls.adjacency[i] = make([]time.Duration, tr.Rails())
	}
	return ls, nil
}

// Start implements Router.
func (ls *LinkState) Start() error {
	ls.mu.Lock()
	if ls.started {
		ls.mu.Unlock()
		return fmt.Errorf("routing: link-state router started twice")
	}
	ls.started = true
	ls.mu.Unlock()
	ls.tr.SetReceiver(ls.onFrame)
	ls.helloRound()
	return nil
}

// Stop implements Router.
func (ls *LinkState) Stop() {
	ls.mu.Lock()
	ls.stopped = true
	cancel := ls.helloCancel
	ls.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// SetDeliverFunc implements Router.
func (ls *LinkState) SetDeliverFunc(fn func(src int, data []byte)) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.deliver = fn
}

// Metrics implements Router.
func (ls *LinkState) Metrics() *metrics.Set { return ls.mset }

// helloRound is the periodic timer: send hellos, expire adjacencies
// and stale LSAs, refresh our own LSA.
func (ls *LinkState) helloRound() {
	ls.mu.Lock()
	if ls.stopped {
		ls.mu.Unlock()
		return
	}
	now := ls.clock.Now()

	// Expire adjacencies that have gone silent; note whether anything
	// changed so the LSA gets re-originated.
	changed := false
	for peer := range ls.adjacency {
		for rail := range ls.adjacency[peer] {
			if exp := ls.adjacency[peer][rail]; exp != 0 && exp <= now {
				ls.adjacency[peer][rail] = 0
				changed = true
				ls.event(trace.Event{At: now, Node: ls.tr.Node(), Kind: trace.KindLinkDown,
					Peer: peer, Rail: rail, Detail: "adjacency expired"})
			}
		}
	}
	// Age out LSDB entries (other routers crashed without retracting).
	for origin, entry := range ls.lsdb {
		if entry != nil && now-entry.heardAt > ls.cfg.LSAMaxAge {
			ls.lsdb[origin] = nil
			changed = true
		}
	}
	ls.mu.Unlock()

	// Hellos on every rail.
	hello := Envelope(ProtoControl, []byte{lsMsgHello})
	for rail := 0; rail < ls.tr.Rails(); rail++ {
		_ = ls.tr.Send(rail, Broadcast, hello)
	}
	ls.mset.Counter(CtrProbesSent).Inc() // hellos are this protocol's probes

	// Re-originate our LSA every round (it doubles as the refresh),
	// and recompute routes if the topology view moved.
	ls.originateLSA()
	if changed {
		ls.recompute()
	}

	ls.mu.Lock()
	if !ls.stopped {
		ls.helloCancel = ls.clock.AfterFunc(ls.cfg.HelloInterval, ls.helloRound)
	}
	ls.mu.Unlock()
}

// Control sub-types for ProtoControl frames originated by LinkState.
// They occupy a disjoint range from the DRS messages so a mixed
// cluster fails loudly rather than silently misparsing.
const (
	lsMsgHello = 64
	lsMsgLSA   = 65
)

// originateLSA floods this node's current adjacency list.
func (ls *LinkState) originateLSA() {
	ls.mu.Lock()
	now := ls.clock.Now()
	ls.lsaSeq++
	entry := &lsa{origin: ls.tr.Node(), seq: ls.lsaSeq, heardAt: now}
	for peer := range ls.adjacency {
		for rail := range ls.adjacency[peer] {
			if ls.adjacency[peer][rail] > now {
				entry.neighbors = append(entry.neighbors, lsNeighbor{node: peer, rail: rail})
			}
		}
	}
	ls.lsdb[ls.tr.Node()] = entry
	payload := Envelope(ProtoControl, marshalLSA(entry))
	ls.mu.Unlock()

	for rail := 0; rail < ls.tr.Rails(); rail++ {
		_ = ls.tr.Send(rail, Broadcast, payload)
	}
	ls.mset.Counter(CtrAdvertsSent).Inc()
}

func marshalLSA(e *lsa) []byte {
	b := make([]byte, 1+2+4+2+4*len(e.neighbors))
	b[0] = lsMsgLSA
	binary.BigEndian.PutUint16(b[1:3], uint16(e.origin))
	binary.BigEndian.PutUint32(b[3:7], e.seq)
	binary.BigEndian.PutUint16(b[7:9], uint16(len(e.neighbors)))
	off := 9
	for _, n := range e.neighbors {
		binary.BigEndian.PutUint16(b[off:], uint16(n.node))
		binary.BigEndian.PutUint16(b[off+2:], uint16(n.rail))
		off += 4
	}
	return b
}

func unmarshalLSA(b []byte) (*lsa, error) {
	if len(b) < 9 || b[0] != lsMsgLSA {
		return nil, fmt.Errorf("routing: malformed LSA")
	}
	count := int(binary.BigEndian.Uint16(b[7:9]))
	if len(b) < 9+4*count {
		return nil, fmt.Errorf("routing: truncated LSA")
	}
	e := &lsa{
		origin: int(binary.BigEndian.Uint16(b[1:3])),
		seq:    binary.BigEndian.Uint32(b[3:7]),
	}
	off := 9
	for i := 0; i < count; i++ {
		e.neighbors = append(e.neighbors, lsNeighbor{
			node: int(binary.BigEndian.Uint16(b[off:])),
			rail: int(binary.BigEndian.Uint16(b[off+2:])),
		})
		off += 4
	}
	return e, nil
}

func (ls *LinkState) onFrame(rail, src int, payload []byte) {
	proto, body, err := SplitEnvelope(payload)
	if err != nil {
		return
	}
	switch proto {
	case ProtoControl:
		if len(body) == 0 {
			return
		}
		switch body[0] {
		case lsMsgHello:
			ls.onHello(rail, src)
		case lsMsgLSA:
			ls.onLSA(body)
		}
	case ProtoData:
		ls.onData(body)
	}
}

func (ls *LinkState) onHello(rail, src int) {
	ls.mu.Lock()
	if ls.stopped || src == ls.tr.Node() {
		ls.mu.Unlock()
		return
	}
	now := ls.clock.Now()
	wasDown := ls.adjacency[src][rail] <= now
	ls.adjacency[src][rail] = now + ls.cfg.DeadInterval
	ls.mu.Unlock()
	if wasDown {
		ls.event(trace.Event{At: now, Node: ls.tr.Node(), Kind: trace.KindLinkUp,
			Peer: src, Rail: rail, Detail: "adjacency formed"})
		// Topology changed from our vantage point: re-originate and
		// recompute immediately (OSPF's event-driven flooding).
		ls.originateLSA()
		ls.recompute()
	}
}

func (ls *LinkState) onLSA(body []byte) {
	entry, err := unmarshalLSA(body)
	if err != nil {
		return
	}
	if entry.origin < 0 || entry.origin >= ls.tr.Nodes() || entry.origin == ls.tr.Node() {
		return
	}
	ls.mset.Counter(CtrAdvertsRecv).Inc()
	ls.mu.Lock()
	if ls.stopped {
		ls.mu.Unlock()
		return
	}
	existing := ls.lsdb[entry.origin]
	if existing != nil && entry.seq <= existing.seq {
		ls.mu.Unlock()
		return // stale or duplicate: do not re-flood (flooding terminates)
	}
	entry.heardAt = ls.clock.Now()
	ls.lsdb[entry.origin] = entry
	payload := Envelope(ProtoControl, marshalLSA(entry))
	ls.mu.Unlock()

	// Re-flood the news on every rail so it crosses rail boundaries.
	for rail := 0; rail < ls.tr.Rails(); rail++ {
		_ = ls.tr.Send(rail, Broadcast, payload)
	}
	ls.recompute()
}

// recompute runs SPF over the LSDB. An edge (a, b, rail) exists only
// when both endpoints advertise it (OSPF's bidirectionality check).
func (ls *LinkState) recompute() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	n := ls.tr.Nodes()
	self := ls.tr.Node()
	now := ls.clock.Now()

	claims := func(a, b, rail int) bool {
		if a == self {
			return ls.adjacency[b][rail] > now
		}
		e := ls.lsdb[a]
		if e == nil {
			return false
		}
		for _, nb := range e.neighbors {
			if nb.node == b && nb.rail == rail {
				return true
			}
		}
		return false
	}

	// BFS from self over bidirectional edges; hop count is the metric
	// (all links are equal-cost 100 Mb/s).
	type hop struct {
		via  int
		rail int
	}
	first := make([]hop, n)
	visited := make([]bool, n)
	visited[self] = true
	queue := []int{self}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := 0; next < n; next++ {
			if visited[next] || next == cur {
				continue
			}
			for rail := 0; rail < ls.tr.Rails(); rail++ {
				if claims(cur, next, rail) && claims(next, cur, rail) {
					visited[next] = true
					if cur == self {
						first[next] = hop{via: next, rail: rail}
					} else {
						first[next] = first[cur]
					}
					queue = append(queue, next)
					break
				}
			}
		}
	}
	for dst := 0; dst < n; dst++ {
		if dst == self {
			continue
		}
		prev := ls.routes[dst]
		if visited[dst] {
			ls.routes[dst] = lsRoute{valid: true, via: first[dst].via, rail: first[dst].rail}
		} else {
			ls.routes[dst] = lsRoute{}
		}
		if prev != ls.routes[dst] {
			ls.mset.Counter(CtrRepairs).Inc()
			ls.event(trace.Event{At: now, Node: self, Kind: trace.KindRouteInstalled,
				Peer: dst, Rail: ls.routes[dst].rail,
				Detail: fmt.Sprintf("spf via %d (valid=%v)", ls.routes[dst].via, ls.routes[dst].valid)})
		}
	}
}

// SendData implements Router.
func (ls *LinkState) SendData(dst int, data []byte) error {
	ls.mu.Lock()
	if ls.stopped {
		ls.mu.Unlock()
		return ErrStopped
	}
	if dst < 0 || dst >= ls.tr.Nodes() || dst == ls.tr.Node() {
		ls.mu.Unlock()
		return fmt.Errorf("routing: bad destination %d", dst)
	}
	rt := ls.routes[dst]
	if !rt.valid {
		ls.mu.Unlock()
		ls.mset.Counter(CtrDataNoRoute).Inc()
		return ErrNoRoute
	}
	ls.seq++
	h := DataHeader{Origin: uint16(ls.tr.Node()), Final: uint16(dst),
		TTL: uint8(ls.cfg.DataTTL), Seq: ls.seq}
	ls.mu.Unlock()
	ls.mset.Counter(CtrDataSent).Inc()
	return ls.tr.Send(rt.rail, rt.via, Envelope(ProtoData, MarshalData(h, data)))
}

func (ls *LinkState) onData(body []byte) {
	h, data, err := UnmarshalData(body)
	if err != nil {
		return
	}
	self := ls.tr.Node()
	if int(h.Final) == self {
		ls.mu.Lock()
		deliver := ls.deliver
		stopped := ls.stopped
		ls.mu.Unlock()
		if stopped || deliver == nil {
			return
		}
		ls.mset.Counter(CtrDataDelivered).Inc()
		deliver(int(h.Origin), data)
		return
	}
	if h.TTL <= 1 {
		ls.mset.Counter(CtrDataDropped).Inc()
		return
	}
	h.TTL--
	final := int(h.Final)
	if final < 0 || final >= ls.tr.Nodes() {
		ls.mset.Counter(CtrDataDropped).Inc()
		return
	}
	ls.mu.Lock()
	rt := ls.routes[final]
	stopped := ls.stopped
	ls.mu.Unlock()
	if stopped || !rt.valid {
		ls.mset.Counter(CtrDataDropped).Inc()
		return
	}
	ls.mset.Counter(CtrDataForwarded).Inc()
	_ = ls.tr.Send(rt.rail, rt.via, Envelope(ProtoData, MarshalData(h, data)))
}

// RouteVia reports the current first hop toward dst (testing hook).
func (ls *LinkState) RouteVia(dst int) (via, rail int, ok bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	rt := ls.routes[dst]
	return rt.via, rt.rail, rt.valid
}

func (ls *LinkState) event(e trace.Event) {
	if ls.cfg.Trace != nil {
		ls.cfg.Trace.Append(e)
	}
}

var _ Router = (*LinkState)(nil)
