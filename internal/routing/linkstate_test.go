package routing

import (
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

type lsHarness struct {
	sched     *simtime.Scheduler
	net       *netsim.Network
	routers   []*LinkState
	delivered [][]deliveredMsg
}

func newLSHarness(t *testing.T, n int, cfg LinkStateConfig) *lsHarness {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(n), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &lsHarness{sched: sched, net: net, delivered: make([][]deliveredMsg, n)}
	clock := SimClock{Sched: sched}
	for node := 0; node < n; node++ {
		node := node
		r, err := NewLinkState(NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.SetDeliverFunc(func(src int, data []byte) {
			h.delivered[node] = append(h.delivered[node], deliveredMsg{src, string(data)})
		})
		h.routers = append(h.routers, r)
	}
	for _, r := range h.routers {
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *lsHarness) runFor(d time.Duration) { h.sched.RunUntil(h.sched.Now().Add(d)) }

func (h *lsHarness) stop() {
	for _, r := range h.routers {
		r.Stop()
	}
}

func TestLinkStateConvergesAndDelivers(t *testing.T) {
	h := newLSHarness(t, 5, DefaultLinkStateConfig())
	defer h.stop()
	h.runFor(3 * time.Second)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a == b {
				continue
			}
			via, _, ok := h.routers[a].RouteVia(b)
			if !ok {
				t.Fatalf("%d has no route to %d after convergence", a, b)
			}
			if via != b {
				t.Fatalf("%d routes to %d via %d on a healthy network, want direct", a, b, via)
			}
		}
	}
	if err := h.routers[0].SendData(4, []byte("spf")); err != nil {
		t.Fatal(err)
	}
	h.runFor(200 * time.Millisecond)
	if len(h.delivered[4]) != 1 || h.delivered[4][0].data != "spf" {
		t.Fatalf("delivered = %v", h.delivered[4])
	}
}

func TestLinkStateNICFailureRecoversAfterDeadInterval(t *testing.T) {
	cfg := DefaultLinkStateConfig()
	h := newLSHarness(t, 4, cfg)
	defer h.stop()
	h.runFor(3 * time.Second)

	failAt := h.sched.Now().Duration()
	h.net.Fail(h.net.Cluster().NIC(1, 0))

	// Immediately after: the stale SPF still points into the dead
	// rail; traffic is lost (the reactive signature).
	_ = h.routers[0].SendData(1, []byte("lost"))
	h.runFor(100 * time.Millisecond)
	if len(h.delivered[1]) != 0 {
		t.Fatal("datagram crossed a dead NIC")
	}

	// After the dead interval the adjacency expires, LSAs re-flood,
	// SPF moves to rail 1.
	h.runFor(cfg.DeadInterval + 2*cfg.HelloInterval)
	via, rail, ok := h.routers[0].RouteVia(1)
	if !ok || via != 1 || rail != 1 {
		t.Fatalf("route after recovery: via=%d rail=%d ok=%v", via, rail, ok)
	}
	recoveredBy := h.sched.Now().Duration() - failAt
	if recoveredBy > cfg.DeadInterval+3*cfg.HelloInterval {
		t.Fatalf("recovery took %v", recoveredBy)
	}
	if err := h.routers[0].SendData(1, []byte("back")); err != nil {
		t.Fatal(err)
	}
	h.runFor(200 * time.Millisecond)
	if len(h.delivered[1]) != 1 || h.delivered[1][0].data != "back" {
		t.Fatalf("delivered = %v", h.delivered[1])
	}
}

func TestLinkStateCrossRailMultiHop(t *testing.T) {
	// Node 0 keeps rail 1 only, node 1 keeps rail 0 only: SPF must
	// route through an intermediate with both rails.
	cfg := DefaultLinkStateConfig()
	h := newLSHarness(t, 4, cfg)
	defer h.stop()
	cl := h.net.Cluster()
	h.net.Fail(cl.NIC(0, 0))
	h.net.Fail(cl.NIC(1, 1))
	h.runFor(cfg.DeadInterval + 4*cfg.HelloInterval)

	via, _, ok := h.routers[0].RouteVia(1)
	if !ok {
		t.Fatal("no SPF route across the rails")
	}
	if via == 1 {
		t.Fatal("SPF claims a direct route that cannot exist")
	}
	if err := h.routers[0].SendData(1, []byte("two-hop")); err != nil {
		t.Fatal(err)
	}
	h.runFor(300 * time.Millisecond)
	if len(h.delivered[1]) != 1 {
		t.Fatalf("delivered = %v", h.delivered[1])
	}
	forwarded := h.routers[2].Metrics().Counter(CtrDataForwarded).Value() +
		h.routers[3].Metrics().Counter(CtrDataForwarded).Value()
	if forwarded == 0 {
		t.Fatal("no forwarding on a two-hop SPF path")
	}
}

func TestLinkStateFloodingTerminates(t *testing.T) {
	// LSAs are re-flooded only on a new sequence number; run long and
	// confirm the advert volume grows linearly, not explosively.
	cfg := DefaultLinkStateConfig()
	h := newLSHarness(t, 5, cfg)
	defer h.stop()
	count := func() int64 {
		var recv int64
		for _, r := range h.routers {
			recv += r.Metrics().Counter(CtrAdvertsRecv).Value()
		}
		return recv
	}
	h.runFor(10 * time.Second)
	at10 := count()
	if at10 == 0 {
		t.Fatal("no LSAs exchanged")
	}
	h.runFor(10 * time.Second)
	at20 := count()
	// Terminating flooding grows linearly with time (refresh-driven);
	// a flood loop would grow explosively. Allow generous slack for
	// the startup burst in the first window.
	if ratio := float64(at20) / float64(at10); ratio > 2.5 {
		t.Fatalf("LSA volume grew %.1f× across a time doubling — flooding not terminating", ratio)
	}
}

func TestLinkStateDeadNodeAgesOut(t *testing.T) {
	cfg := DefaultLinkStateConfig()
	h := newLSHarness(t, 3, cfg)
	defer h.stop()
	h.runFor(3 * time.Second)
	// Node 2 vanishes (both NICs) — after MaxAge its LSA is gone and
	// routes to it disappear.
	cl := h.net.Cluster()
	h.net.Fail(cl.NIC(2, 0))
	h.net.Fail(cl.NIC(2, 1))
	h.runFor(cfg.LSAMaxAge + 3*cfg.HelloInterval)
	if _, _, ok := h.routers[0].RouteVia(2); ok {
		t.Fatal("route to a long-dead node survived MaxAge")
	}
	if err := h.routers[0].SendData(2, []byte("x")); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestLinkStateValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(2), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSimNode(net, 0)
	clock := SimClock{Sched: sched}
	if _, err := NewLinkState(nil, clock, DefaultLinkStateConfig()); err == nil {
		t.Error("nil transport accepted")
	}
	bad := DefaultLinkStateConfig()
	bad.HelloInterval = 0
	if _, err := NewLinkState(tr, clock, bad); err == nil {
		t.Error("zero hello accepted")
	}
	bad = DefaultLinkStateConfig()
	bad.DeadInterval = bad.HelloInterval / 2
	if _, err := NewLinkState(tr, clock, bad); err == nil {
		t.Error("dead < hello accepted")
	}
	bad = DefaultLinkStateConfig()
	bad.LSAMaxAge = bad.DeadInterval / 2
	if _, err := NewLinkState(tr, clock, bad); err == nil {
		t.Error("maxage < dead accepted")
	}
	r, err := NewLinkState(tr, clock, DefaultLinkStateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Error("double start accepted")
	}
	if err := r.SendData(0, nil); err == nil {
		t.Error("self send accepted")
	}
	r.Stop()
	if err := r.SendData(1, nil); err != ErrStopped {
		t.Errorf("send after stop: %v", err)
	}
}

func TestLinkStateTTLBoundsForwarding(t *testing.T) {
	cfg := DefaultLinkStateConfig()
	cfg.DataTTL = 1
	h := newLSHarness(t, 4, cfg)
	defer h.stop()
	cl := h.net.Cluster()
	h.net.Fail(cl.NIC(0, 0))
	h.net.Fail(cl.NIC(1, 1))
	h.runFor(cfg.DeadInterval + 4*cfg.HelloInterval)
	if _, _, ok := h.routers[0].RouteVia(1); !ok {
		t.Skip("no multi-hop route formed")
	}
	if err := h.routers[0].SendData(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	h.runFor(300 * time.Millisecond)
	if len(h.delivered[1]) != 0 {
		t.Fatal("TTL-1 datagram crossed a relay")
	}
}

func TestLinkStateManyFailuresMatchReachability(t *testing.T) {
	// After convergence, SPF routes must exist exactly for reachable
	// nodes (per the conn predicate's semantics of rails+NICs).
	cfg := DefaultLinkStateConfig()
	h := newLSHarness(t, 6, cfg)
	defer h.stop()
	h.runFor(3 * time.Second)
	cl := h.net.Cluster()
	h.net.Fail(cl.NIC(0, 0))
	h.net.Fail(cl.NIC(3, 1))
	h.net.Fail(cl.Backplane(1))
	// Now: node 0 has no live rail attachment except rail... NIC(0,0)
	// dead + backplane 1 dead → node 0 fully detached. Node 3 is fine
	// on rail 0.
	h.runFor(cfg.LSAMaxAge + 5*cfg.HelloInterval)
	if _, _, ok := h.routers[1].RouteVia(0); ok {
		t.Fatal("route to a detached node")
	}
	if _, _, ok := h.routers[1].RouteVia(3); !ok {
		t.Fatal("no route to a reachable node")
	}
	if err := h.routers[1].SendData(3, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	h.runFor(200 * time.Millisecond)
	if len(h.delivered[3]) != 1 {
		t.Fatal("reachable node did not receive")
	}
}

func TestLinkStateQueueOverflowDropsOldest(t *testing.T) {
	// With QueueCapacity set, a routeless SendData queues instead of
	// failing; overflow evicts the oldest datagram deterministically
	// and the survivors flush in order once SPF finds a route again.
	cfg := DefaultLinkStateConfig()
	cfg.QueueCapacity = 3
	h := newLSHarness(t, 3, cfg)
	defer h.stop()
	h.runFor(3 * time.Second)

	cl := h.net.Cluster()
	nic0, nic1 := cl.NIC(1, 0), cl.NIC(1, 1)
	h.net.Fail(nic0)
	h.net.Fail(nic1)
	h.runFor(cfg.DeadInterval + 2*cfg.HelloInterval)
	if _, _, ok := h.routers[0].RouteVia(1); ok {
		t.Fatal("route to isolated node survived the dead interval")
	}

	for i := 0; i < cfg.QueueCapacity+2; i++ {
		if err := h.routers[0].SendData(1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d failed: %v", i, err)
		}
	}
	m := h.routers[0].Metrics()
	if got := m.Counter(CtrQueueOverflow).Value(); got != 2 {
		t.Fatalf("queue.overflow = %d, want 2", got)
	}
	if got := m.Counter(CtrDataNoRoute).Value(); got != 0 {
		t.Fatalf("data.noroute = %d, want 0 with queueing enabled", got)
	}

	// Repair: adjacency reforms, SPF reinstalls the route, and exactly
	// the three freshest datagrams arrive, oldest-first.
	h.net.Restore(nic0)
	h.net.Restore(nic1)
	h.runFor(3 * cfg.HelloInterval)
	got := h.delivered[1]
	if len(got) != cfg.QueueCapacity {
		t.Fatalf("%d datagrams delivered after repair, want %d: %v", len(got), cfg.QueueCapacity, got)
	}
	for i, msg := range got {
		if want := string([]byte{byte(i + 2)}); msg.src != 0 || msg.data != want {
			t.Fatalf("delivery %d = %+v, want payload %q from 0", i, msg, want)
		}
	}
}
