package routing

import (
	"fmt"
	"sync"
	"time"

	"drsnet/internal/dataplane"
	"drsnet/internal/linkmon"
	"drsnet/internal/metrics"
	"drsnet/internal/trace"
)

// ReactiveConfig parameterizes the RIP-like baseline. The defaults
// mirror RIP's shape (advertisements every interval, routes expiring
// after six intervals) at LAN-appropriate scale.
type ReactiveConfig struct {
	// AdvertiseInterval is the period between advertisement
	// broadcasts on every rail.
	AdvertiseInterval time.Duration
	// RouteTimeout is how long a learned route stays valid without
	// being refreshed. RIP uses 6× the advertisement interval
	// (180 s / 30 s); the default preserves that ratio.
	RouteTimeout time.Duration
	// DataTTL bounds forwarding hops.
	DataTTL int
	// Trace, if non-nil, receives protocol events.
	Trace *trace.Log
}

// DefaultReactiveConfig returns the baseline configuration used by the
// proactive-vs-reactive experiments: 1 s advertisements, 6 s timeout.
func DefaultReactiveConfig() ReactiveConfig {
	return ReactiveConfig{
		AdvertiseInterval: time.Second,
		RouteTimeout:      6 * time.Second,
		DataTTL:           4,
	}
}

func (c *ReactiveConfig) normalize() error {
	if c.AdvertiseInterval <= 0 {
		return fmt.Errorf("routing: advertise interval must be positive")
	}
	if c.RouteTimeout == 0 {
		c.RouteTimeout = 6 * c.AdvertiseInterval
	}
	if c.RouteTimeout < c.AdvertiseInterval {
		return fmt.Errorf("routing: route timeout %v below advertise interval %v",
			c.RouteTimeout, c.AdvertiseInterval)
	}
	if c.DataTTL <= 0 {
		c.DataTTL = 4
	}
	return nil
}

// Reactive is a deliberately traditional distance-vector router:
// periodic advertisements, timeout-driven failure discovery, no
// probing. After a component fails, traffic keeps flowing into the
// dead path until the stale route expires — the recovery latency the
// DRS's proactive link checks are designed to eliminate.
//
// It is built from the same shared layers as the other protocols: the
// advertisement loop is a linkmon.Rounds, the route timeouts are a
// linkmon.Deadlines matrix, and datagram mechanics live in a
// dataplane.Plane. Only the distance-vector policy is Reactive's own.
type Reactive struct {
	cfg   ReactiveConfig
	tr    Transport
	clock Clock
	mset  *metrics.Set

	mu      sync.Mutex
	started bool
	stopped bool
	deliver func(src int, data []byte)
	// direct holds the expiry of the direct route learned by hearing
	// peer's advertisement on each rail.
	direct *linkmon.Deadlines
	// twoHop[peer] is a relay route learned from an advertisement
	// listing peer as reachable.
	twoHop []twoHopRoute

	plane  *dataplane.Plane
	rounds *linkmon.Rounds
}

type twoHopRoute struct {
	via    int
	rail   int
	expiry time.Duration
}

// NewReactive returns a reactive router over tr driven by clock.
func NewReactive(tr Transport, clock Clock, cfg ReactiveConfig) (*Reactive, error) {
	if tr == nil || clock == nil {
		return nil, fmt.Errorf("routing: nil transport or clock")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	mset := metrics.NewSet()
	r := &Reactive{
		cfg:    cfg,
		tr:     tr,
		clock:  clock,
		mset:   mset,
		direct: linkmon.NewDeadlines(tr.Nodes(), tr.Rails()),
		twoHop: make([]twoHopRoute, tr.Nodes()),
		// Queueing stays disabled (capacity 0): a distance-vector
		// router has no discovery to wait on, so a routeless datagram
		// fails fast instead.
		plane:  dataplane.New(tr.Node(), tr.Nodes(), cfg.DataTTL, 0, mset.Counter(CtrQueueOverflow)),
		rounds: linkmon.NewRounds(clock),
	}
	return r, nil
}

// Start implements Router: it installs the receiver, advertises
// immediately, and begins the periodic advertisement loop.
func (r *Reactive) Start() error {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return fmt.Errorf("routing: reactive router started twice")
	}
	r.started = true
	r.mu.Unlock()
	r.tr.SetReceiver(r.onFrame)
	r.rounds.Run(r.cfg.AdvertiseInterval, r.advertise)
	return nil
}

// Stop implements Router.
func (r *Reactive) Stop() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
	r.rounds.Stop()
}

// SetDeliverFunc implements Router.
func (r *Reactive) SetDeliverFunc(fn func(src int, data []byte)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliver = fn
}

// Metrics implements Router.
func (r *Reactive) Metrics() *metrics.Set { return r.mset }

// advertise broadcasts the advertisement on every rail; the Rounds
// loop reschedules it after it returns.
func (r *Reactive) advertise() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	now := r.clock.Now()
	var reachable []uint16
	for peer := 0; peer < r.tr.Nodes(); peer++ {
		if peer == r.tr.Node() {
			continue
		}
		if r.direct.AnyAlive(peer, now) {
			reachable = append(reachable, uint16(peer))
		}
	}
	r.mu.Unlock()

	body, err := MarshalAdvert(Advert{Reachable: reachable})
	if err == nil {
		for rail := 0; rail < r.tr.Rails(); rail++ {
			if err := r.tr.Send(rail, Broadcast, Envelope(ProtoAdvert, body)); err == nil {
				r.mset.Counter(CtrAdvertsSent).Inc()
			}
		}
	}
}

func (r *Reactive) onFrame(rail, src int, payload []byte) {
	proto, body, err := SplitEnvelope(payload)
	if err != nil {
		return
	}
	switch proto {
	case ProtoAdvert:
		r.onAdvert(rail, src, body)
	case ProtoData:
		r.onData(rail, src, body)
	}
}

func (r *Reactive) onAdvert(rail, src int, body []byte) {
	adv, err := UnmarshalAdvert(body)
	if err != nil {
		return
	}
	r.mset.Counter(CtrAdvertsRecv).Inc()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	now := r.clock.Now()
	expiry := now + r.cfg.RouteTimeout
	wasUp := r.direct.AnyAlive(src, now)
	r.direct.Refresh(src, rail, now, expiry)
	if !wasUp {
		r.event(trace.Event{At: now, Node: r.tr.Node(), Kind: trace.KindRouteInstalled,
			Peer: src, Rail: rail, Detail: "direct (advert)"})
	}
	for _, p := range adv.Reachable {
		peer := int(p)
		if peer == r.tr.Node() || peer < 0 || peer >= r.tr.Nodes() || peer == src {
			continue
		}
		// Prefer the freshest relay.
		if r.twoHop[peer].expiry < expiry {
			r.twoHop[peer] = twoHopRoute{via: src, rail: rail, expiry: expiry}
		}
	}
}

// SendData implements Router.
func (r *Reactive) SendData(dst int, data []byte) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return ErrStopped
	}
	if dst < 0 || dst >= r.tr.Nodes() || dst == r.tr.Node() {
		r.mu.Unlock()
		return fmt.Errorf("routing: bad destination %d", dst)
	}
	// The sequence number advances even when routing fails — the next
	// datagram that does get out keeps a gap-free view of what was
	// attempted.
	frame := r.plane.NewFrame(dst, data)
	rail, via, ok := r.routeLocked(dst)
	r.mu.Unlock()
	if !ok {
		r.mset.Counter(CtrDataNoRoute).Inc()
		return ErrNoRoute
	}
	r.mset.Counter(CtrDataSent).Inc()
	return r.tr.Send(rail, via, frame)
}

// routeLocked picks the next hop for dst: the freshest-enough direct
// rail first, then a two-hop relay.
func (r *Reactive) routeLocked(dst int) (rail, via int, ok bool) {
	now := r.clock.Now()
	if rail, ok := r.direct.FirstAlive(dst, now); ok {
		return rail, dst, true
	}
	if th := r.twoHop[dst]; th.expiry > now {
		return th.rail, th.via, true
	}
	return 0, 0, false
}

func (r *Reactive) onData(rail, src int, body []byte) {
	h, data, act := r.plane.Classify(body)
	switch act {
	case dataplane.Deliver:
		r.mu.Lock()
		deliver := r.deliver
		stopped := r.stopped
		r.mu.Unlock()
		if stopped || deliver == nil {
			return
		}
		r.mset.Counter(CtrDataDelivered).Inc()
		deliver(int(h.Origin), data)
	case dataplane.Drop:
		r.mset.Counter(CtrDataDropped).Inc()
	case dataplane.Forward:
		// Forward as relay: only along a live direct route, so paths
		// stay at most two hops and cannot loop (the TTL is a
		// backstop).
		r.mu.Lock()
		stopped := r.stopped
		now := r.clock.Now()
		outRail := -1
		if rail, ok := r.direct.FirstAlive(int(h.Final), now); ok {
			outRail = rail
		}
		r.mu.Unlock()
		if stopped || outRail < 0 {
			r.mset.Counter(CtrDataDropped).Inc()
			return
		}
		r.mset.Counter(CtrDataForwarded).Inc()
		_ = r.tr.Send(outRail, int(h.Final), dataplane.Frame(h, data))
	}
}

func (r *Reactive) event(e trace.Event) {
	if r.cfg.Trace != nil {
		r.cfg.Trace.Append(e)
	}
}

var _ Router = (*Reactive)(nil)
