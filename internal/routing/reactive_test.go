package routing

import (
	"testing"
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
)

// harness builds an n-node simulated cluster running reactive routers.
type harness struct {
	sched   *simtime.Scheduler
	net     *netsim.Network
	routers []*Reactive
	// delivered[node] collects (src, payload) pairs.
	delivered [][]deliveredMsg
}

type deliveredMsg struct {
	src  int
	data string
}

func newHarness(t *testing.T, n int, cfg ReactiveConfig) *harness {
	t.Helper()
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(n), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{sched: sched, net: net, delivered: make([][]deliveredMsg, n)}
	clock := SimClock{Sched: sched}
	for node := 0; node < n; node++ {
		node := node
		r, err := NewReactive(NewSimNode(net, node), clock, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.SetDeliverFunc(func(src int, data []byte) {
			h.delivered[node] = append(h.delivered[node], deliveredMsg{src, string(data)})
		})
		h.routers = append(h.routers, r)
	}
	for _, r := range h.routers {
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *harness) runFor(d time.Duration) {
	h.sched.RunUntil(h.sched.Now().Add(d))
}

func (h *harness) stop() {
	for _, r := range h.routers {
		r.Stop()
	}
}

func TestReactiveLearnsAndDelivers(t *testing.T) {
	h := newHarness(t, 4, DefaultReactiveConfig())
	defer h.stop()
	// Let two advertisement rounds pass.
	h.runFor(2100 * time.Millisecond)
	if err := h.routers[0].SendData(3, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	h.runFor(100 * time.Millisecond)
	if len(h.delivered[3]) != 1 || h.delivered[3][0] != (deliveredMsg{0, "hi"}) {
		t.Fatalf("delivered = %v", h.delivered[3])
	}
}

func TestReactiveNoRouteBeforeFirstAdvert(t *testing.T) {
	// Before any advertisement arrives the table is empty. Build the
	// cluster but consult the router immediately (advertisements are
	// in flight but not delivered at time zero).
	h := newHarness(t, 3, DefaultReactiveConfig())
	defer h.stop()
	if err := h.routers[0].SendData(1, []byte("x")); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if h.routers[0].Metrics().Counter(CtrDataNoRoute).Value() != 1 {
		t.Fatal("noroute not counted")
	}
}

func TestReactiveFailsOverOnlyAfterTimeout(t *testing.T) {
	// The defining reactive behaviour: after the primary-rail NIC of
	// the destination dies, traffic is lost until the stale direct
	// route expires; afterwards the rail-1 route carries it.
	cfg := DefaultReactiveConfig()
	h := newHarness(t, 3, cfg)
	defer h.stop()
	h.runFor(2100 * time.Millisecond)

	c := h.net.Cluster()
	h.net.Fail(c.NIC(1, 0))

	// Immediately after the failure the stale rail-0 route is used
	// and the datagram dies in the network: sent, not delivered.
	if err := h.routers[0].SendData(1, []byte("lost")); err != nil {
		t.Fatalf("stale route should still be used: %v", err)
	}
	h.runFor(200 * time.Millisecond)
	if len(h.delivered[1]) != 0 {
		t.Fatalf("datagram delivered through failed NIC: %v", h.delivered[1])
	}

	// After the timeout the rail-0 entry expires; rail-1 (still
	// refreshed by adverts) takes over.
	h.runFor(cfg.RouteTimeout + time.Second)
	if err := h.routers[0].SendData(1, []byte("recovered")); err != nil {
		t.Fatal(err)
	}
	h.runFor(200 * time.Millisecond)
	if len(h.delivered[1]) != 1 || h.delivered[1][0].data != "recovered" {
		t.Fatalf("delivered = %v", h.delivered[1])
	}
}

func TestReactiveTwoHopRelay(t *testing.T) {
	// Node 0 loses rail 1; node 1 loses rail 0. No direct rail works,
	// but node 2 advertises reachability to both, providing a relay.
	cfg := DefaultReactiveConfig()
	h := newHarness(t, 3, cfg)
	defer h.stop()
	c := h.net.Cluster()
	h.net.Fail(c.NIC(0, 1))
	h.net.Fail(c.NIC(1, 0))
	// Give the stale directs time to expire and fresh state to settle.
	h.runFor(cfg.RouteTimeout + 3*time.Second)

	if err := h.routers[0].SendData(1, []byte("via-relay")); err != nil {
		t.Fatalf("no relay route: %v", err)
	}
	h.runFor(300 * time.Millisecond)
	if len(h.delivered[1]) != 1 || h.delivered[1][0].data != "via-relay" {
		t.Fatalf("delivered = %v", h.delivered[1])
	}
	if h.routers[2].Metrics().Counter(CtrDataForwarded).Value() == 0 {
		t.Fatal("relay did not forward")
	}
}

func TestReactiveTTLExhaustionDrops(t *testing.T) {
	cfg := DefaultReactiveConfig()
	cfg.DataTTL = 1
	h := newHarness(t, 3, cfg)
	defer h.stop()
	c := h.net.Cluster()
	h.net.Fail(c.NIC(0, 1))
	h.net.Fail(c.NIC(1, 0))
	h.runFor(cfg.RouteTimeout + 3*time.Second)
	// Relay route exists, but TTL 1 dies at the relay.
	if err := h.routers[0].SendData(1, []byte("x")); err != nil {
		t.Skipf("no relay route formed: %v", err)
	}
	h.runFor(300 * time.Millisecond)
	if len(h.delivered[1]) != 0 {
		t.Fatal("TTL-1 datagram crossed a relay")
	}
	if h.routers[2].Metrics().Counter(CtrDataDropped).Value() == 0 {
		t.Fatal("relay drop not counted")
	}
}

func TestReactiveStopSilences(t *testing.T) {
	h := newHarness(t, 2, DefaultReactiveConfig())
	h.runFor(1500 * time.Millisecond)
	h.routers[1].Stop()
	if err := h.routers[1].SendData(0, []byte("x")); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
	sentBefore := h.routers[1].Metrics().Counter(CtrAdvertsSent).Value()
	h.runFor(3 * time.Second)
	if got := h.routers[1].Metrics().Counter(CtrAdvertsSent).Value(); got != sentBefore {
		t.Fatalf("stopped router kept advertising: %d -> %d", sentBefore, got)
	}
	h.routers[0].Stop()
}

func TestReactiveValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(2), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewSimNode(net, 0)
	clock := SimClock{Sched: sched}
	if _, err := NewReactive(nil, clock, DefaultReactiveConfig()); err == nil {
		t.Error("nil transport accepted")
	}
	bad := DefaultReactiveConfig()
	bad.AdvertiseInterval = 0
	if _, err := NewReactive(tr, clock, bad); err == nil {
		t.Error("zero interval accepted")
	}
	bad = DefaultReactiveConfig()
	bad.RouteTimeout = bad.AdvertiseInterval / 2
	if _, err := NewReactive(tr, clock, bad); err == nil {
		t.Error("timeout below interval accepted")
	}
	r, err := NewReactive(tr, clock, DefaultReactiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Error("double start accepted")
	}
	if err := r.SendData(0, nil); err == nil {
		t.Error("self destination accepted")
	}
	if err := r.SendData(9, nil); err == nil {
		t.Error("out-of-range destination accepted")
	}
	r.Stop()
}

func TestStaticDeliversAndNeverRecovers(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(2), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []deliveredMsg
	a, err := NewStatic(NewSimNode(net, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStatic(NewSimNode(net, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	b.SetDeliverFunc(func(src int, data []byte) {
		got = append(got, deliveredMsg{src, string(data)})
	})
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.SendData(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(got) != 1 || got[0].data != "one" {
		t.Fatalf("delivered = %v", got)
	}
	// Fail the pinned rail: static routing never recovers, even though
	// rail 1 is perfectly healthy.
	net.Fail(net.Cluster().Backplane(0))
	if err := a.SendData(1, []byte("two")); err != nil {
		t.Fatal(err)
	}
	sched.Run(0)
	if len(got) != 1 {
		t.Fatalf("static router recovered?! %v", got)
	}
}

func TestStaticValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	net, err := netsim.New(sched, topology.Dual(2), netsim.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStatic(nil, 0); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewStatic(NewSimNode(net, 0), 5); err == nil {
		t.Error("bad rail accepted")
	}
	s, err := NewStatic(NewSimNode(net, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("double start accepted")
	}
	s.Stop()
	if err := s.SendData(1, nil); err != ErrStopped {
		t.Errorf("err = %v", err)
	}
}
