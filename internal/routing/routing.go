// Package routing defines the abstractions shared by every routing
// implementation in this repository — the DRS (package core) and the
// baselines it is evaluated against — plus the baselines themselves:
//
//   - Static: the no-fault-tolerance strawman — all traffic on the
//     primary rail, no recovery whatsoever.
//   - Reactive: a RIP-like distance-vector protocol. Routes are
//     learned from periodic advertisements and expire after a timeout;
//     nothing probes for liveness, so a failure is only discovered
//     when a stale route times out. This is the "traditional routing
//     system" of the paper's comparison: "The general design goal is
//     based on reactively rerouting when a specified timeout period
//     has been reached."
//
// Routers are transport-agnostic: the same code runs over the
// deterministic packet simulator (SimNode/SimClock) and over real UDP
// sockets (examples/livecluster provides a UDP transport).
package routing

import (
	"errors"

	"drsnet/internal/clock"
	"drsnet/internal/metrics"
	"drsnet/internal/transport"
)

// Broadcast is the destination meaning "every node on the rail".
const Broadcast = transport.Broadcast

// Transport is a node's interface to its network. The canonical
// definition lives in internal/transport, alongside its three
// implementations (simulator, in-memory, UDP); the alias keeps this
// package the one-stop vocabulary for routing implementations.
type Transport = transport.Transport

// Clock abstracts time so protocol code runs identically under the
// simulator's virtual clock and the real one. The canonical
// definition lives in internal/clock.
type Clock = clock.Clock

// Router is the data-plane contract every routing implementation
// satisfies. Applications hand a Router datagrams addressed by node
// index; the Router hides link failures as well as its protocol
// allows.
type Router interface {
	// Start begins protocol operation (timers, advertisements,
	// probes). It must be called exactly once.
	Start() error
	// Stop halts all protocol activity.
	Stop()
	// SendData routes one application datagram to dst. An error means
	// the router knows it has no usable route; nil means the datagram
	// was handed to the network (which may still lose it).
	SendData(dst int, data []byte) error
	// SetDeliverFunc installs the application receive callback.
	SetDeliverFunc(fn func(src int, data []byte))
	// Metrics exposes the router's counters.
	Metrics() *metrics.Set
}

// ErrNoRoute is returned by SendData when the router has no usable
// route to the destination.
var ErrNoRoute = errors.New("routing: no route to destination")

// ErrStopped is returned when the router has been stopped.
var ErrStopped = errors.New("routing: router stopped")

// Counter names shared by implementations (not all routers use all).
const (
	CtrDataSent      = "data.sent"
	CtrDataDelivered = "data.delivered"
	CtrDataForwarded = "data.forwarded"
	CtrDataDropped   = "data.dropped"
	CtrDataNoRoute   = "data.noroute"
	CtrAdvertsSent   = "adverts.sent"
	CtrAdvertsRecv   = "adverts.recv"
	CtrProbesSent    = "probes.sent"
	CtrProbeReplies  = "probes.replies"
	CtrLinkDown      = "links.down"
	CtrLinkUp        = "links.up"
	CtrQueriesSent   = "queries.sent"
	CtrQueriesRecv   = "queries.recv"
	CtrOffersSent    = "offers.sent"
	CtrOffersRecv    = "offers.recv"
	CtrRepairs       = "routes.repaired"
	// CtrQueueOverflow counts datagrams evicted (oldest first) from a
	// full discovery queue.
	CtrQueueOverflow = "queue.overflow"
	// CtrLinkFlaps counts link down transitions per daemon — the
	// chattiness signal the flap-damping extension reacts to.
	CtrLinkFlaps = "link.flaps"
	// CtrRouteDamped counts recovered links held down (not re-trusted)
	// by route-flap damping; CtrDampedNs accumulates the total
	// nanoseconds links spent in the held-down state.
	CtrRouteDamped = "route.damped"
	CtrDampedNs    = "route.damped_ns"
	// CtrStaleControl counts control frames dropped for carrying an
	// older incarnation than the membership view — late frames from a
	// peer's previous life (crash–restart lifecycle).
	CtrStaleControl = "control.stale"
	// CtrRTOExpired counts adaptive probe deadlines that fired before
	// the reply arrived (each is a miss counted ahead of the round).
	CtrRTOExpired = "probe.rto_expired"
	// CtrProbeRetransmits counts RTO-driven replacement probes
	// actually sent — the traffic the overload probe budget bounds.
	CtrProbeRetransmits = "probe.retransmits"
	// Overload-protection counters (zero unless the layer is enabled).
	// CtrProbeShed counts probe retransmits refused by the budget;
	// CtrQueryShed counts discovery broadcasts refused (deferred to
	// the control queue); CtrHelloSuppressed counts membership hellos
	// withheld by the min-interval/degraded gates; CtrCtrlDeferred
	// counts intents parked on the prioritized control queue, and the
	// CtrCtrlShed* family counts intents that queue evicted, by class.
	CtrProbeShed         = "overload.probe_shed"
	CtrQueryShed         = "overload.query_shed"
	CtrHelloSuppressed   = "overload.hello_suppressed"
	CtrCtrlDeferred      = "overload.deferred"
	CtrCtrlShedLiveness  = "overload.shed_liveness"
	CtrCtrlShedRepair    = "overload.shed_repair"
	CtrCtrlShedDiscovery = "overload.shed_discovery"
	// CtrDegradedEnter counts degraded-mode episodes; CtrDegradedNs
	// accumulates nanoseconds spent degraded; CtrRoutePinned counts
	// routes pinned (kept last-known-good) while degraded.
	CtrDegradedEnter = "overload.degraded"
	CtrDegradedNs    = "overload.degraded_ns"
	CtrRoutePinned   = "overload.route_pinned"
)
