package routing

import (
	"time"

	"drsnet/internal/netsim"
	"drsnet/internal/simtime"
)

// SimNode adapts one node of a netsim.Net (dual-rail Network or
// switched FabricNet) to the Transport interface, so protocol daemons
// run unmodified inside the simulator.
type SimNode struct {
	net  netsim.Net
	node int
	recv func(rail, src int, payload []byte)
}

// NewSimNode attaches a transport to node in net. It installs itself
// as the node's netsim handler.
func NewSimNode(net netsim.Net, node int) *SimNode {
	s := &SimNode{net: net, node: node}
	net.SetHandler(node, func(fr netsim.Frame) {
		if s.recv != nil {
			s.recv(fr.Rail, fr.Src, fr.Payload)
		}
	})
	return s
}

// Node implements Transport.
func (s *SimNode) Node() int { return s.node }

// Nodes implements Transport.
func (s *SimNode) Nodes() int { return s.net.Nodes() }

// Rails implements Transport.
func (s *SimNode) Rails() int { return s.net.Rails() }

// Send implements Transport.
func (s *SimNode) Send(rail, dst int, payload []byte) error {
	if dst == Broadcast {
		dst = netsim.Broadcast
	}
	return s.net.Send(s.node, rail, dst, payload)
}

// SetReceiver implements Transport.
func (s *SimNode) SetReceiver(fn func(rail, src int, payload []byte)) {
	s.recv = fn
}

// SimClock adapts a simtime.Scheduler to the Clock interface.
type SimClock struct {
	Sched *simtime.Scheduler
}

// Now implements Clock.
func (c SimClock) Now() time.Duration { return c.Sched.Now().Duration() }

// AfterFunc implements Clock.
func (c SimClock) AfterFunc(d time.Duration, fn func()) (cancel func() bool) {
	t := c.Sched.After(d, fn)
	return t.Cancel
}

var _ Transport = (*SimNode)(nil)
var _ Clock = SimClock{}
