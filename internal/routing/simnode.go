package routing

import (
	"drsnet/internal/clock"
	"drsnet/internal/netsim"
	"drsnet/internal/transport"
)

// SimNode adapts one node of a netsim.Net (dual-rail Network or
// switched FabricNet) to the Transport interface, so protocol daemons
// run unmodified inside the simulator. The implementation moved to
// internal/transport; the alias keeps the historical name every
// harness and example uses.
type SimNode = transport.Sim

// NewSimNode attaches a transport to node in net. It installs itself
// as the node's netsim handler.
func NewSimNode(net netsim.Net, node int) *SimNode {
	return transport.NewSim(net, node)
}

// SimClock adapts a simtime.Scheduler to the Clock interface. The
// implementation moved to internal/clock.
type SimClock = clock.Sim
