package routing

import (
	"fmt"
	"sync"

	"drsnet/internal/metrics"
)

// Static is the no-fault-tolerance baseline: every datagram goes
// directly to its destination on a fixed rail. If that rail or either
// NIC on it fails, traffic is silently lost forever — the behaviour of
// a cluster with a single network and no routing protocol at all.
type Static struct {
	mu      sync.Mutex
	tr      Transport
	rail    int
	deliver func(src int, data []byte)
	mset    *metrics.Set
	seq     uint32
	started bool
	stopped bool
}

// NewStatic returns a static router pinning traffic to rail.
func NewStatic(tr Transport, rail int) (*Static, error) {
	if tr == nil {
		return nil, fmt.Errorf("routing: nil transport")
	}
	if rail < 0 || rail >= tr.Rails() {
		return nil, fmt.Errorf("routing: rail %d out of range [0,%d)", rail, tr.Rails())
	}
	return &Static{tr: tr, rail: rail, mset: metrics.NewSet()}, nil
}

// Start implements Router.
func (s *Static) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("routing: static router started twice")
	}
	s.started = true
	s.tr.SetReceiver(s.onFrame)
	return nil
}

// Stop implements Router.
func (s *Static) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
}

// SetDeliverFunc implements Router.
func (s *Static) SetDeliverFunc(fn func(src int, data []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deliver = fn
}

// Metrics implements Router.
func (s *Static) Metrics() *metrics.Set { return s.mset }

// SendData implements Router.
func (s *Static) SendData(dst int, data []byte) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if dst < 0 || dst >= s.tr.Nodes() || dst == s.tr.Node() {
		s.mu.Unlock()
		return fmt.Errorf("routing: bad destination %d", dst)
	}
	s.seq++
	h := DataHeader{Origin: uint16(s.tr.Node()), Final: uint16(dst), TTL: 1, Seq: s.seq}
	s.mu.Unlock()

	s.mset.Counter(CtrDataSent).Inc()
	return s.tr.Send(s.rail, dst, Envelope(ProtoData, MarshalData(h, data)))
}

func (s *Static) onFrame(rail, src int, payload []byte) {
	proto, body, err := SplitEnvelope(payload)
	if err != nil || proto != ProtoData {
		return
	}
	h, data, err := UnmarshalData(body)
	if err != nil {
		return
	}
	if int(h.Final) != s.tr.Node() {
		// Static routers never forward.
		s.mset.Counter(CtrDataDropped).Inc()
		return
	}
	s.mu.Lock()
	deliver := s.deliver
	stopped := s.stopped
	s.mu.Unlock()
	if stopped || deliver == nil {
		return
	}
	s.mset.Counter(CtrDataDelivered).Inc()
	deliver(int(h.Origin), data)
}

var _ Router = (*Static)(nil)
