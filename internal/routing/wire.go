package routing

import "drsnet/internal/routing/wire"

// The codecs live in drsnet/internal/routing/wire so every protocol
// layer (linkmon, dataplane, core, the baselines) shares one parsing
// surface with a single fuzz entry point. The names below are aliases
// kept for the many existing callers of the routing package.

// Protocol discriminators: the first byte of every frame payload.
const (
	ProtoICMP    = wire.ProtoICMP
	ProtoControl = wire.ProtoControl
	ProtoData    = wire.ProtoData
	ProtoAdvert  = wire.ProtoAdvert
)

// ErrShortFrame is returned when a frame is too short to decode.
var ErrShortFrame = wire.ErrShortFrame

// DataHeader precedes every application datagram on the wire.
type DataHeader = wire.DataHeader

// DataHeaderLen is the encoded size of a DataHeader.
const DataHeaderLen = wire.DataHeaderLen

// Advert is a reactive-routing advertisement.
type Advert = wire.Advert

// Codec functions, re-exported from package wire.
var (
	Envelope        = wire.Envelope
	SplitEnvelope   = wire.SplitEnvelope
	MarshalData     = wire.MarshalData
	UnmarshalData   = wire.UnmarshalData
	MarshalAdvert   = wire.MarshalAdvert
	UnmarshalAdvert = wire.UnmarshalAdvert
)
