package wire

import "encoding/binary"

// Control message types carried in ProtoControl frames. The DRS and
// the link-state baseline occupy disjoint ranges so a mixed cluster
// fails loudly rather than silently misparsing.
const (
	// MsgRouteQuery / MsgRouteOffer are the DRS phase-2 relay
	// discovery exchange.
	MsgRouteQuery = 1
	MsgRouteOffer = 2
	// MsgHello and MsgGoodbye implement dynamic membership (an
	// extension beyond the paper's statically configured host lists):
	// hello announces the sender, goodbye retracts it. The sender's
	// identity comes from the frame, so both are a bare type byte.
	MsgHello   = 3
	MsgGoodbye = 4
	// MsgRejoin announces a restarted daemon's new life: the body
	// carries a monotonically increasing incarnation number so peers
	// purge routes that relay through the previous life. MsgHelloInc
	// and MsgOfferInc are the incarnation-stamped variants of hello
	// and route offer, emitted only when the crash–restart lifecycle
	// is enabled (the legacy frames stay the default so seeded runs
	// are byte-identical without it).
	MsgRejoin   = 5
	MsgHelloInc = 6
	MsgOfferInc = 7
	// MsgLSHello and MsgLSA belong to the OSPF-lite baseline:
	// adjacency heartbeat and link-state advertisement.
	MsgLSHello = 64
	MsgLSA     = 65
)

// MarshalHello encodes a membership announcement.
func MarshalHello() []byte { return []byte{MsgHello} }

// MarshalGoodbye encodes a membership retraction.
func MarshalGoodbye() []byte { return []byte{MsgGoodbye} }

// MarshalLSHello encodes a link-state adjacency heartbeat.
func MarshalLSHello() []byte { return []byte{MsgLSHello} }

// Query is the broadcast the DRS makes when no direct link to a peer
// remains: "is some other server able to act as a router to create a
// new path between the sender and the proposed recipient?"
type Query struct {
	Origin uint16 // node asking
	Target uint16 // node it wants to reach
	Seq    uint32 // per-origin discovery sequence (dedupes rebroadcasts)
	TTL    uint8  // remaining rebroadcast depth
}

// QueryLen is the encoded size of a Query.
const QueryLen = 1 + 2 + 2 + 4 + 1

// MarshalQuery encodes a route query as a ProtoControl body.
func MarshalQuery(q Query) []byte {
	b := make([]byte, QueryLen)
	b[0] = MsgRouteQuery
	binary.BigEndian.PutUint16(b[1:3], q.Origin)
	binary.BigEndian.PutUint16(b[3:5], q.Target)
	binary.BigEndian.PutUint32(b[5:9], q.Seq)
	b[9] = q.TTL
	return b
}

// UnmarshalQuery decodes a route query.
func UnmarshalQuery(b []byte) (Query, error) {
	if len(b) < QueryLen || b[0] != MsgRouteQuery {
		return Query{}, ErrBadControl
	}
	return Query{
		Origin: binary.BigEndian.Uint16(b[1:3]),
		Target: binary.BigEndian.Uint16(b[3:5]),
		Seq:    binary.BigEndian.Uint32(b[5:9]),
		TTL:    b[9],
	}, nil
}

// Offer answers a Query: "I can reach Target; route through me." When
// Relay equals Target the offer came from the target itself, so the
// origin installs a direct route on the rail the offer arrived on.
type Offer struct {
	Origin uint16 // the querying node (offer is unicast back to it)
	Target uint16
	Seq    uint32 // echoes the query sequence
	Relay  uint16 // the offering node
}

// OfferLen is the encoded size of an Offer.
const OfferLen = 1 + 2 + 2 + 4 + 2

// MarshalOffer encodes a route offer as a ProtoControl body.
func MarshalOffer(o Offer) []byte {
	b := make([]byte, OfferLen)
	b[0] = MsgRouteOffer
	binary.BigEndian.PutUint16(b[1:3], o.Origin)
	binary.BigEndian.PutUint16(b[3:5], o.Target)
	binary.BigEndian.PutUint32(b[5:9], o.Seq)
	binary.BigEndian.PutUint16(b[9:11], o.Relay)
	return b
}

// UnmarshalOffer decodes a route offer.
func UnmarshalOffer(b []byte) (Offer, error) {
	if len(b) < OfferLen || b[0] != MsgRouteOffer {
		return Offer{}, ErrBadControl
	}
	return Offer{
		Origin: binary.BigEndian.Uint16(b[1:3]),
		Target: binary.BigEndian.Uint16(b[3:5]),
		Seq:    binary.BigEndian.Uint32(b[5:9]),
		Relay:  binary.BigEndian.Uint16(b[9:11]),
	}, nil
}

// RejoinLen is the encoded size of a rejoin announcement or an
// incarnation-stamped hello: one type byte plus the incarnation.
const RejoinLen = 1 + 4

// MarshalRejoin encodes a rejoin announcement carrying the sender's
// incarnation number.
func MarshalRejoin(incarnation uint32) []byte {
	b := make([]byte, RejoinLen)
	b[0] = MsgRejoin
	binary.BigEndian.PutUint32(b[1:5], incarnation)
	return b
}

// UnmarshalRejoin decodes a rejoin announcement.
func UnmarshalRejoin(b []byte) (incarnation uint32, err error) {
	if len(b) < RejoinLen || b[0] != MsgRejoin {
		return 0, ErrBadControl
	}
	return binary.BigEndian.Uint32(b[1:5]), nil
}

// MarshalHelloInc encodes an incarnation-stamped membership
// announcement.
func MarshalHelloInc(incarnation uint32) []byte {
	b := make([]byte, RejoinLen)
	b[0] = MsgHelloInc
	binary.BigEndian.PutUint32(b[1:5], incarnation)
	return b
}

// UnmarshalHelloInc decodes an incarnation-stamped hello.
func UnmarshalHelloInc(b []byte) (incarnation uint32, err error) {
	if len(b) < RejoinLen || b[0] != MsgHelloInc {
		return 0, ErrBadControl
	}
	return binary.BigEndian.Uint32(b[1:5]), nil
}

// OfferIncLen is the encoded size of an incarnation-stamped offer.
const OfferIncLen = OfferLen + 4

// MarshalOfferInc encodes a route offer stamped with the relay's
// incarnation, so the querying node can reject an offer that was
// delayed past the relay's next reboot.
func MarshalOfferInc(o Offer, incarnation uint32) []byte {
	b := make([]byte, OfferIncLen)
	b[0] = MsgOfferInc
	binary.BigEndian.PutUint16(b[1:3], o.Origin)
	binary.BigEndian.PutUint16(b[3:5], o.Target)
	binary.BigEndian.PutUint32(b[5:9], o.Seq)
	binary.BigEndian.PutUint16(b[9:11], o.Relay)
	binary.BigEndian.PutUint32(b[11:15], incarnation)
	return b
}

// UnmarshalOfferInc decodes an incarnation-stamped route offer.
func UnmarshalOfferInc(b []byte) (Offer, uint32, error) {
	if len(b) < OfferIncLen || b[0] != MsgOfferInc {
		return Offer{}, 0, ErrBadControl
	}
	return Offer{
		Origin: binary.BigEndian.Uint16(b[1:3]),
		Target: binary.BigEndian.Uint16(b[3:5]),
		Seq:    binary.BigEndian.Uint32(b[5:9]),
		Relay:  binary.BigEndian.Uint16(b[9:11]),
	}, binary.BigEndian.Uint32(b[11:15]), nil
}

// Adjacency is one (node, rail) link an LSA's origin claims.
type Adjacency struct {
	Node uint16
	Rail uint16
}

// LSA is a link-state advertisement: the origin's full adjacency list
// under a per-origin sequence number (freshest wins, stale is not
// re-flooded, so flooding terminates).
type LSA struct {
	Origin    uint16
	Seq       uint32
	Neighbors []Adjacency
}

// lsaFixedLen is the encoded size of an LSA with no neighbors.
const lsaFixedLen = 1 + 2 + 4 + 2

// MarshalLSA encodes a link-state advertisement as a ProtoControl body.
func MarshalLSA(e LSA) []byte {
	b := make([]byte, lsaFixedLen+4*len(e.Neighbors))
	b[0] = MsgLSA
	binary.BigEndian.PutUint16(b[1:3], e.Origin)
	binary.BigEndian.PutUint32(b[3:7], e.Seq)
	binary.BigEndian.PutUint16(b[7:9], uint16(len(e.Neighbors)))
	off := lsaFixedLen
	for _, n := range e.Neighbors {
		binary.BigEndian.PutUint16(b[off:], n.Node)
		binary.BigEndian.PutUint16(b[off+2:], n.Rail)
		off += 4
	}
	return b
}

// UnmarshalLSA decodes a link-state advertisement.
func UnmarshalLSA(b []byte) (LSA, error) {
	if len(b) < lsaFixedLen || b[0] != MsgLSA {
		return LSA{}, ErrBadControl
	}
	count := int(binary.BigEndian.Uint16(b[7:9]))
	if len(b) < lsaFixedLen+4*count {
		return LSA{}, ErrBadControl
	}
	e := LSA{
		Origin: binary.BigEndian.Uint16(b[1:3]),
		Seq:    binary.BigEndian.Uint32(b[3:7]),
	}
	off := lsaFixedLen
	for i := 0; i < count; i++ {
		e.Neighbors = append(e.Neighbors, Adjacency{
			Node: binary.BigEndian.Uint16(b[off:]),
			Rail: binary.BigEndian.Uint16(b[off+2:]),
		})
		off += 4
	}
	return e, nil
}
