package wire

import (
	"bytes"
	"testing"
)

// FuzzFrame is the single fuzz entry point for the whole wire surface:
// it feeds an arbitrary frame through SplitEnvelope and then through
// every decoder the protocol stack would apply to that frame kind,
// checking that no decoder panics and that every accepted message
// re-marshals to the bytes it was decoded from (decoders ignore
// trailing bytes, so the comparison is prefix-wise).
func FuzzFrame(f *testing.F) {
	f.Add([]byte{})
	for _, frame := range seedFrames() {
		f.Add(frame)
		// A real socket delivers truncated datagrams; seed every
		// strict prefix of every frame kind so the decoders' bounds
		// checks are exercised from the first corpus run.
		for cut := len(frame) - 1; cut >= 0; cut-- {
			f.Add(frame[:cut])
		}
	}

	f.Fuzz(func(t *testing.T, frame []byte) {
		proto, body, err := SplitEnvelope(frame)
		if err != nil {
			if len(frame) != 0 {
				t.Fatalf("SplitEnvelope rejected %d bytes", len(frame))
			}
			return
		}
		switch proto {
		case ProtoData:
			h, data, err := UnmarshalData(body)
			if err != nil {
				return
			}
			if out := MarshalData(h, data); !bytes.Equal(out, body) {
				t.Fatalf("data round trip: %x -> %x", body, out)
			}
		case ProtoFailover:
			h, data, err := UnmarshalFailover(body)
			if err != nil {
				return
			}
			if out := MarshalFailover(h, data); !bytes.Equal(out, body) {
				t.Fatalf("failover round trip: %x -> %x", body, out)
			}
		case ProtoAdvert:
			a, err := UnmarshalAdvert(body)
			if err != nil {
				return
			}
			out, err := MarshalAdvert(a)
			if err != nil {
				t.Fatalf("re-marshal of accepted advert failed: %v", err)
			}
			if len(out) > len(body) || !bytes.Equal(out, body[:len(out)]) {
				t.Fatalf("advert round trip: %x -> %x", body, out)
			}
		case ProtoControl:
			if len(body) == 0 {
				return
			}
			switch body[0] {
			case MsgRouteQuery:
				q, err := UnmarshalQuery(body)
				if err != nil {
					return
				}
				out := MarshalQuery(q)
				if !bytes.Equal(out, body[:len(out)]) {
					t.Fatalf("query round trip: %x -> %x", body, out)
				}
			case MsgRouteOffer:
				o, err := UnmarshalOffer(body)
				if err != nil {
					return
				}
				out := MarshalOffer(o)
				if !bytes.Equal(out, body[:len(out)]) {
					t.Fatalf("offer round trip: %x -> %x", body, out)
				}
			case MsgHello, MsgGoodbye, MsgLSHello:
				// Membership and adjacency heartbeats are bare type
				// bytes: nothing further to decode.
			case MsgRejoin:
				inc, err := UnmarshalRejoin(body)
				if err != nil {
					return
				}
				out := MarshalRejoin(inc)
				if !bytes.Equal(out, body[:len(out)]) {
					t.Fatalf("rejoin round trip: %x -> %x", body, out)
				}
			case MsgHelloInc:
				inc, err := UnmarshalHelloInc(body)
				if err != nil {
					return
				}
				out := MarshalHelloInc(inc)
				if !bytes.Equal(out, body[:len(out)]) {
					t.Fatalf("hello-inc round trip: %x -> %x", body, out)
				}
			case MsgOfferInc:
				o, inc, err := UnmarshalOfferInc(body)
				if err != nil {
					return
				}
				out := MarshalOfferInc(o, inc)
				if !bytes.Equal(out, body[:len(out)]) {
					t.Fatalf("offer-inc round trip: %x -> %x", body, out)
				}
			case MsgLSA:
				e, err := UnmarshalLSA(body)
				if err != nil {
					return
				}
				out := MarshalLSA(e)
				if !bytes.Equal(out, body[:len(out)]) {
					t.Fatalf("LSA round trip: %x -> %x", body, out)
				}
			}
		}
	})
}
