package wire

import (
	"fmt"
	"testing"
)

// seedFrames returns one well-formed frame of every kind the protocol
// stack can emit — the shared corpus for FuzzFrame's seeds and the
// deterministic truncation audit below.
func seedFrames() [][]byte {
	advert, _ := MarshalAdvert(Advert{Reachable: []uint16{1, 9, 300}})
	return [][]byte{
		Envelope(ProtoData, MarshalData(DataHeader{Origin: 1, Final: 2, TTL: 3, Seq: 4}, []byte("x"))),
		Envelope(ProtoAdvert, advert),
		Envelope(ProtoControl, MarshalQuery(Query{Origin: 1, Target: 2, Seq: 3, TTL: 2})),
		Envelope(ProtoControl, MarshalOffer(Offer{Origin: 1, Target: 2, Seq: 3, Relay: 7})),
		Envelope(ProtoControl, MarshalHello()),
		Envelope(ProtoControl, MarshalGoodbye()),
		Envelope(ProtoControl, MarshalLSA(LSA{Origin: 5, Seq: 9, Neighbors: []Adjacency{{1, 0}, {2, 1}}})),
		Envelope(ProtoControl, MarshalRejoin(2)),
		Envelope(ProtoControl, MarshalHelloInc(3)),
		Envelope(ProtoControl, MarshalOfferInc(Offer{Origin: 1, Target: 2, Seq: 3, Relay: 7}, 4)),
		Envelope(ProtoFailover, MarshalFailover(FailoverHeader{Origin: 1, Final: 2, Seq: 3, Attempt: 1, Hops: 2}, []byte("y"))),
		Envelope(ProtoFailover, MarshalFailover(FailoverHeader{Origin: 9, Final: 0, Seq: 0xffffffff, Attempt: 255, Hops: 255}, nil)),
	}
}

// decodeFrame drives a frame through SplitEnvelope and the decoder
// the stack would apply to its kind — the same dispatch FuzzFrame
// uses, minus the round-trip assertions.
func decodeFrame(frame []byte) {
	proto, body, err := SplitEnvelope(frame)
	if err != nil {
		return
	}
	switch proto {
	case ProtoData:
		UnmarshalData(body)
	case ProtoFailover:
		UnmarshalFailover(body)
	case ProtoAdvert:
		UnmarshalAdvert(body)
	case ProtoControl:
		if len(body) == 0 {
			return
		}
		switch body[0] {
		case MsgRouteQuery:
			UnmarshalQuery(body)
		case MsgRouteOffer:
			UnmarshalOffer(body)
		case MsgRejoin:
			UnmarshalRejoin(body)
		case MsgHelloInc:
			UnmarshalHelloInc(body)
		case MsgOfferInc:
			UnmarshalOfferInc(body)
		case MsgLSA:
			UnmarshalLSA(body)
		}
	}
}

// TestDecodersTolerateTruncation feeds every strict prefix of every
// frame kind through the full decode dispatch and requires no panics
// — the deterministic form of the datagram-truncation guarantee a
// real socket transport depends on, independent of the fuzzer.
func TestDecodersTolerateTruncation(t *testing.T) {
	for _, frame := range seedFrames() {
		for cut := len(frame); cut >= 0; cut-- {
			prefix := frame[:cut]
			t.Run(fmt.Sprintf("%x", prefix), func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("decoder panicked on %d-byte prefix of %x: %v", cut, frame, r)
					}
				}()
				decodeFrame(prefix)
			})
		}
	}
}
