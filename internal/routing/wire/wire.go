// Package wire defines every on-the-wire format the protocols share:
// the frame envelope, the application data header, reactive-routing
// advertisements, and the control-plane messages of both the DRS
// (route query/offer, membership hello/goodbye) and the link-state
// baseline (LSA). Keeping all codecs in one dependency-free package
// gives every protocol the same decoding discipline and lets a single
// fuzz target (FuzzFrame) exercise the whole parsing surface.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol discriminators: the first byte of every frame payload.
const (
	// ProtoICMP frames carry an ICMP echo message (package icmp).
	ProtoICMP = 1
	// ProtoControl frames carry control messages (see Msg* below).
	ProtoControl = 2
	// ProtoData frames carry application datagrams (DataHeader + data).
	ProtoData = 3
	// ProtoAdvert frames carry reactive-routing advertisements.
	ProtoAdvert = 4
	// ProtoFailover frames carry application datagrams routed by the
	// header-rewriting static fast-failover variant: the header itself
	// is the packet's failover state (FailoverHeader).
	ProtoFailover = 5
)

// ErrShortFrame is returned when a frame is too short to decode.
var ErrShortFrame = errors.New("wire: frame too short")

// ErrBadControl is returned for undecodable control messages.
var ErrBadControl = errors.New("wire: malformed control message")

// Envelope prepends the protocol byte to a body.
func Envelope(proto byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = proto
	copy(out[1:], body)
	return out
}

// SplitEnvelope returns the protocol byte and body of a frame payload.
func SplitEnvelope(payload []byte) (proto byte, body []byte, err error) {
	if len(payload) < 1 {
		return 0, nil, ErrShortFrame
	}
	return payload[0], payload[1:], nil
}

// DataHeader precedes every application datagram on the wire.
type DataHeader struct {
	// Origin is the node that first sent the datagram.
	Origin uint16
	// Final is the ultimate destination node.
	Final uint16
	// TTL bounds forwarding hops; a relay decrements it and drops at
	// zero, so a routing loop can never circulate traffic.
	TTL uint8
	// Seq is an origin-assigned sequence number (for tracing and
	// duplicate detection by applications).
	Seq uint32
}

// DataHeaderLen is the encoded size of a DataHeader.
const DataHeaderLen = 9

// MarshalData encodes the header and payload as a ProtoData body.
func MarshalData(h DataHeader, data []byte) []byte {
	return AppendData(make([]byte, 0, DataHeaderLen+len(data)), h, data)
}

// AppendData appends the encoded header and payload to buf and returns
// the extended slice — the allocation-free form of MarshalData for
// hot paths that reuse a scratch buffer.
func AppendData(buf []byte, h DataHeader, data []byte) []byte {
	var hdr [DataHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], h.Origin)
	binary.BigEndian.PutUint16(hdr[2:4], h.Final)
	hdr[4] = h.TTL
	binary.BigEndian.PutUint32(hdr[5:9], h.Seq)
	buf = append(buf, hdr[:]...)
	return append(buf, data...)
}

// UnmarshalData decodes a ProtoData body. The returned data aliases b.
func UnmarshalData(b []byte) (DataHeader, []byte, error) {
	if len(b) < DataHeaderLen {
		return DataHeader{}, nil, ErrShortFrame
	}
	h := DataHeader{
		Origin: binary.BigEndian.Uint16(b[0:2]),
		Final:  binary.BigEndian.Uint16(b[2:4]),
		TTL:    b[4],
		Seq:    binary.BigEndian.Uint32(b[5:9]),
	}
	return h, b[DataHeaderLen:], nil
}

// FailoverHeader precedes every datagram of the header-rewriting
// static fast-failover variant. Unlike DataHeader there is no TTL:
// loop-freedom comes from Attempt increasing monotonically at every
// reroute (a packet can never revisit a node in the same header
// state), and Hops is a plain odometer used only to bound stretch.
type FailoverHeader struct {
	// Origin is the node that first sent the datagram.
	Origin uint16
	// Final is the ultimate destination node.
	Final uint16
	// Seq is an origin-assigned sequence number.
	Seq uint32
	// Attempt is the index of the precomputed forwarding alternative
	// (arborescence) the packet is currently following. Any node that
	// switches alternatives rewrites it — strictly upward — so the
	// packet's exploration is a monotone walk over the candidate
	// sequence and terminates without a TTL.
	Attempt uint8
	// Hops counts forwarding hops consumed, for stretch accounting and
	// as a defence-in-depth bound against corrupted tables.
	Hops uint8
}

// FailoverHeaderLen is the encoded size of a FailoverHeader.
const FailoverHeaderLen = 10

// MarshalFailover encodes the header and payload as a ProtoFailover
// body.
func MarshalFailover(h FailoverHeader, data []byte) []byte {
	out := make([]byte, FailoverHeaderLen+len(data))
	binary.BigEndian.PutUint16(out[0:2], h.Origin)
	binary.BigEndian.PutUint16(out[2:4], h.Final)
	binary.BigEndian.PutUint32(out[4:8], h.Seq)
	out[8] = h.Attempt
	out[9] = h.Hops
	copy(out[FailoverHeaderLen:], data)
	return out
}

// UnmarshalFailover decodes a ProtoFailover body. The returned data
// aliases b.
func UnmarshalFailover(b []byte) (FailoverHeader, []byte, error) {
	if len(b) < FailoverHeaderLen {
		return FailoverHeader{}, nil, ErrShortFrame
	}
	h := FailoverHeader{
		Origin:  binary.BigEndian.Uint16(b[0:2]),
		Final:   binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Attempt: b[8],
		Hops:    b[9],
	}
	return h, b[FailoverHeaderLen:], nil
}

// Advert is a reactive-routing advertisement: the sender's identity is
// carried by the frame; the body lists the nodes the sender currently
// has direct (metric-1) routes to, letting receivers form metric-2
// routes through the sender.
type Advert struct {
	Reachable []uint16
}

// MarshalAdvert encodes an advertisement body.
func MarshalAdvert(a Advert) ([]byte, error) {
	if len(a.Reachable) > 0xffff {
		return nil, fmt.Errorf("wire: advert lists %d nodes", len(a.Reachable))
	}
	out := make([]byte, 2+2*len(a.Reachable))
	binary.BigEndian.PutUint16(out[0:2], uint16(len(a.Reachable)))
	for i, n := range a.Reachable {
		binary.BigEndian.PutUint16(out[2+2*i:], n)
	}
	return out, nil
}

// UnmarshalAdvert decodes an advertisement body.
func UnmarshalAdvert(b []byte) (Advert, error) {
	if len(b) < 2 {
		return Advert{}, ErrShortFrame
	}
	n := int(binary.BigEndian.Uint16(b[0:2]))
	if len(b) < 2+2*n {
		return Advert{}, ErrShortFrame
	}
	a := Advert{Reachable: make([]uint16, n)}
	for i := 0; i < n; i++ {
		a.Reachable[i] = binary.BigEndian.Uint16(b[2+2*i:])
	}
	return a, nil
}
