package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	p := Envelope(ProtoData, []byte("body"))
	proto, body, err := SplitEnvelope(p)
	if err != nil || proto != ProtoData || string(body) != "body" {
		t.Fatalf("split = %d %q %v", proto, body, err)
	}
	if _, _, err := SplitEnvelope(nil); err != ErrShortFrame {
		t.Fatalf("empty envelope: %v", err)
	}
}

func TestDataHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(origin, final uint16, ttl uint8, seq uint32, data []byte) bool {
		h := DataHeader{Origin: origin, Final: final, TTL: ttl, Seq: seq}
		got, gotData, err := UnmarshalData(MarshalData(h, data))
		return err == nil && got == h && bytes.Equal(gotData, data)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalDataShort(t *testing.T) {
	if _, _, err := UnmarshalData(make([]byte, DataHeaderLen-1)); err != ErrShortFrame {
		t.Fatalf("short data: %v", err)
	}
}

func TestFailoverHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(origin, final uint16, seq uint32, attempt, hops uint8, data []byte) bool {
		h := FailoverHeader{Origin: origin, Final: final, Seq: seq, Attempt: attempt, Hops: hops}
		got, gotData, err := UnmarshalFailover(MarshalFailover(h, data))
		return err == nil && got == h && bytes.Equal(gotData, data)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalFailoverShort(t *testing.T) {
	if _, _, err := UnmarshalFailover(make([]byte, FailoverHeaderLen-1)); err != ErrShortFrame {
		t.Fatalf("short failover header: %v", err)
	}
}

func TestAdvertRoundTrip(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		body, err := MarshalAdvert(Advert{Reachable: raw})
		if err != nil {
			return false
		}
		got, err := UnmarshalAdvert(body)
		if err != nil || len(got.Reachable) != len(raw) {
			return false
		}
		for i := range raw {
			if got.Reachable[i] != raw[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdvertEmpty(t *testing.T) {
	body, err := MarshalAdvert(Advert{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAdvert(body)
	if err != nil || len(got.Reachable) != 0 {
		t.Fatalf("empty advert: %v %v", got, err)
	}
}

func TestAdvertTruncated(t *testing.T) {
	body, err := MarshalAdvert(Advert{Reachable: []uint16{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(body); cut++ {
		if _, err := UnmarshalAdvert(body[:len(body)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	if _, err := UnmarshalAdvert([]byte{0}); err != ErrShortFrame {
		t.Fatalf("one-byte advert: %v", err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	err := quick.Check(func(origin, target uint16, seq uint32, ttl uint8) bool {
		q := Query{Origin: origin, Target: target, Seq: seq, TTL: ttl}
		got, err := UnmarshalQuery(MarshalQuery(q))
		return err == nil && got == q
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOfferRoundTrip(t *testing.T) {
	err := quick.Check(func(origin, target uint16, seq uint32, relay uint16) bool {
		o := Offer{Origin: origin, Target: target, Seq: seq, Relay: relay}
		got, err := UnmarshalOffer(MarshalOffer(o))
		return err == nil && got == o
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestControlTruncatedAndMistyped(t *testing.T) {
	query := MarshalQuery(Query{Origin: 1, Target: 2, Seq: 3, TTL: 4})
	offer := MarshalOffer(Offer{Origin: 1, Target: 2, Seq: 3, Relay: 5})
	for cut := 1; cut <= len(query); cut++ {
		if _, err := UnmarshalQuery(query[:len(query)-cut]); err != ErrBadControl {
			t.Fatalf("query truncated by %d: %v", cut, err)
		}
	}
	for cut := 1; cut <= len(offer); cut++ {
		if _, err := UnmarshalOffer(offer[:len(offer)-cut]); err != ErrBadControl {
			t.Fatalf("offer truncated by %d: %v", cut, err)
		}
	}
	// Each decoder rejects the other's type byte.
	if _, err := UnmarshalQuery(offer[:QueryLen]); err != ErrBadControl {
		t.Fatalf("query decoder accepted offer: %v", err)
	}
	if _, err := UnmarshalOffer(append(query, 0)); err != ErrBadControl {
		t.Fatalf("offer decoder accepted query: %v", err)
	}
}

func TestMembershipCodecs(t *testing.T) {
	if got := MarshalHello(); len(got) != 1 || got[0] != MsgHello {
		t.Fatalf("hello = %v", got)
	}
	if got := MarshalGoodbye(); len(got) != 1 || got[0] != MsgGoodbye {
		t.Fatalf("goodbye = %v", got)
	}
	if got := MarshalLSHello(); len(got) != 1 || got[0] != MsgLSHello {
		t.Fatalf("ls hello = %v", got)
	}
}

func TestLSARoundTrip(t *testing.T) {
	err := quick.Check(func(origin uint16, seq uint32, neighbors []Adjacency) bool {
		if len(neighbors) > 0xffff {
			neighbors = neighbors[:0xffff]
		}
		e := LSA{Origin: origin, Seq: seq, Neighbors: neighbors}
		got, err := UnmarshalLSA(MarshalLSA(e))
		if err != nil || got.Origin != e.Origin || got.Seq != e.Seq ||
			len(got.Neighbors) != len(e.Neighbors) {
			return false
		}
		for i := range e.Neighbors {
			if got.Neighbors[i] != e.Neighbors[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLSATruncated(t *testing.T) {
	body := MarshalLSA(LSA{Origin: 3, Seq: 7, Neighbors: []Adjacency{{1, 0}, {2, 1}}})
	for cut := 1; cut <= len(body); cut++ {
		if _, err := UnmarshalLSA(body[:len(body)-cut]); err != ErrBadControl {
			t.Fatalf("LSA truncated by %d: %v", cut, err)
		}
	}
}

func TestRejoinRoundTrip(t *testing.T) {
	err := quick.Check(func(inc uint32) bool {
		got, err := UnmarshalRejoin(MarshalRejoin(inc))
		return err == nil && got == inc
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHelloIncRoundTrip(t *testing.T) {
	err := quick.Check(func(inc uint32) bool {
		got, err := UnmarshalHelloInc(MarshalHelloInc(inc))
		return err == nil && got == inc
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOfferIncRoundTrip(t *testing.T) {
	err := quick.Check(func(origin, target uint16, seq uint32, relay uint16, inc uint32) bool {
		o := Offer{Origin: origin, Target: target, Seq: seq, Relay: relay}
		got, gotInc, err := UnmarshalOfferInc(MarshalOfferInc(o, inc))
		return err == nil && got == o && gotInc == inc
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIncarnationCodecsTruncatedAndMistyped(t *testing.T) {
	rejoin := MarshalRejoin(7)
	hello := MarshalHelloInc(7)
	offer := MarshalOfferInc(Offer{Origin: 1, Target: 2, Seq: 3, Relay: 5}, 7)
	for cut := 1; cut <= len(rejoin); cut++ {
		if _, err := UnmarshalRejoin(rejoin[:len(rejoin)-cut]); err != ErrBadControl {
			t.Fatalf("rejoin truncated by %d: %v", cut, err)
		}
		if _, err := UnmarshalHelloInc(hello[:len(hello)-cut]); err != ErrBadControl {
			t.Fatalf("hello-inc truncated by %d: %v", cut, err)
		}
	}
	for cut := 1; cut <= len(offer); cut++ {
		if _, _, err := UnmarshalOfferInc(offer[:len(offer)-cut]); err != ErrBadControl {
			t.Fatalf("offer-inc truncated by %d: %v", cut, err)
		}
	}
	// Each decoder rejects the others' type bytes.
	if _, err := UnmarshalRejoin(hello); err != ErrBadControl {
		t.Fatalf("rejoin decoder accepted hello-inc: %v", err)
	}
	if _, err := UnmarshalHelloInc(rejoin); err != ErrBadControl {
		t.Fatalf("hello-inc decoder accepted rejoin: %v", err)
	}
	if _, _, err := UnmarshalOfferInc(append(rejoin, make([]byte, OfferIncLen)...)); err != ErrBadControl {
		t.Fatalf("offer-inc decoder accepted rejoin: %v", err)
	}
}

// TestDisjointControlRanges pins the DRS / link-state type split: a
// mixed cluster must fail loudly, which requires the ranges to never
// collide.
func TestDisjointControlRanges(t *testing.T) {
	drs := []byte{MsgRouteQuery, MsgRouteOffer, MsgHello, MsgGoodbye, MsgRejoin, MsgHelloInc, MsgOfferInc}
	ls := []byte{MsgLSHello, MsgLSA}
	for _, d := range drs {
		if d >= 64 {
			t.Errorf("DRS message type %d in link-state range", d)
		}
		for _, l := range ls {
			if d == l {
				t.Errorf("type %d used by both protocols", d)
			}
		}
	}
}
