package routing

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	p := Envelope(ProtoData, []byte("body"))
	proto, body, err := SplitEnvelope(p)
	if err != nil || proto != ProtoData || string(body) != "body" {
		t.Fatalf("split = %d %q %v", proto, body, err)
	}
	if _, _, err := SplitEnvelope(nil); err != ErrShortFrame {
		t.Fatalf("empty envelope: %v", err)
	}
}

func TestDataHeaderRoundTrip(t *testing.T) {
	err := quick.Check(func(origin, final uint16, ttl uint8, seq uint32, data []byte) bool {
		h := DataHeader{Origin: origin, Final: final, TTL: ttl, Seq: seq}
		got, gotData, err := UnmarshalData(MarshalData(h, data))
		return err == nil && got == h && bytes.Equal(gotData, data)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalDataShort(t *testing.T) {
	if _, _, err := UnmarshalData(make([]byte, DataHeaderLen-1)); err != ErrShortFrame {
		t.Fatalf("short data: %v", err)
	}
}

func TestAdvertRoundTrip(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		body, err := MarshalAdvert(Advert{Reachable: raw})
		if err != nil {
			return false
		}
		got, err := UnmarshalAdvert(body)
		if err != nil || len(got.Reachable) != len(raw) {
			return false
		}
		for i := range raw {
			if got.Reachable[i] != raw[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdvertEmpty(t *testing.T) {
	body, err := MarshalAdvert(Advert{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAdvert(body)
	if err != nil || len(got.Reachable) != 0 {
		t.Fatalf("empty advert: %v %v", got, err)
	}
}

func TestAdvertTruncated(t *testing.T) {
	body, err := MarshalAdvert(Advert{Reachable: []uint16{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(body); cut++ {
		if _, err := UnmarshalAdvert(body[:len(body)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	if _, err := UnmarshalAdvert([]byte{0}); err != ErrShortFrame {
		t.Fatalf("one-byte advert: %v", err)
	}
}
