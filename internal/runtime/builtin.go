package runtime

import (
	"drsnet/internal/core"
	"drsnet/internal/failover"
	"drsnet/internal/routing"
)

// The built-in protocols of the paper's comparison, registered under
// the names the experiments, the scenario loader and cmd/drsim use.
// Additional protocols register themselves the same way — no
// experiment or command-line code needs to change.
func init() {
	Register(ProtoDRS, buildDRS)
	Register(ProtoReactive, buildReactive)
	Register(ProtoLinkState, buildLinkState)
	Register(ProtoStatic, buildStatic)
	Register(ProtoFailoverRotor, buildFailoverRotor)
	Register(ProtoFailoverArbor, buildFailoverArbor)
	Register(ProtoFailoverBounce, buildFailoverBounce)
}

// buildDRS constructs the paper's proactive Dynamic Routing System
// daemon (package core).
func buildDRS(ctx BuildContext) (routing.Router, error) {
	cfg := core.DefaultConfig()
	cfg.ProbeInterval = ctx.Spec.Tunables.ProbeInterval
	cfg.MissThreshold = ctx.Spec.Tunables.MissThreshold
	cfg.StaggerProbes = ctx.Spec.Tunables.StaggerProbes
	cfg.PreferLowLatency = ctx.Spec.Tunables.PreferLowLatency
	cfg.StrictLinkEvidence = ctx.Spec.Tunables.StrictLinkEvidence
	cfg.FlapDamping = ctx.Spec.Tunables.FlapDamping
	cfg.AdaptiveRTO = ctx.Spec.Tunables.AdaptiveRTO
	cfg.Overload = ctx.Spec.Tunables.Overload
	cfg.Incarnation = ctx.Incarnation
	cfg.Restore = ctx.Restore
	cfg.Trace = ctx.Spec.Trace
	return core.New(ctx.Transport, ctx.Clock, cfg)
}

// buildReactive constructs the RIP-like distance-vector baseline.
func buildReactive(ctx BuildContext) (routing.Router, error) {
	cfg := routing.DefaultReactiveConfig()
	cfg.AdvertiseInterval = ctx.Spec.Tunables.AdvertiseInterval
	cfg.RouteTimeout = ctx.Spec.Tunables.RouteTimeout
	cfg.Trace = ctx.Spec.Trace
	return routing.NewReactive(ctx.Transport, ctx.Clock, cfg)
}

// buildLinkState constructs the OSPF-like link-state baseline. Its
// hello period follows the reactive advertisement interval, as the
// experiments have always configured it.
func buildLinkState(ctx BuildContext) (routing.Router, error) {
	cfg := routing.DefaultLinkStateConfig()
	cfg.HelloInterval = ctx.Spec.Tunables.AdvertiseInterval
	cfg.Trace = ctx.Spec.Trace
	return routing.NewLinkState(ctx.Transport, ctx.Clock, cfg)
}

// buildStatic constructs the no-fault-tolerance strawman.
func buildStatic(ctx BuildContext) (routing.Router, error) {
	return routing.NewStatic(ctx.Transport, ctx.Spec.Tunables.StaticRail)
}

// failoverConfig maps the spec's tunables onto the static fast-failover
// family's knobs.
func failoverConfig(ctx BuildContext) failover.Config {
	return failover.Config{TTL: ctx.Spec.Tunables.FailoverTTL}
}

// buildFailoverRotor constructs the circular direct-rail variant.
func buildFailoverRotor(ctx BuildContext) (routing.Router, error) {
	return failover.NewRotor(ctx.Transport, ctx.Carrier, failoverConfig(ctx))
}

// buildFailoverArbor constructs the arborescence (precomputed relay
// tree) variant.
func buildFailoverArbor(ctx BuildContext) (routing.Router, error) {
	return failover.NewArbor(ctx.Transport, ctx.Carrier, failoverConfig(ctx))
}

// buildFailoverBounce constructs the header-rewriting variant.
func buildFailoverBounce(ctx BuildContext) (routing.Router, error) {
	return failover.NewBounce(ctx.Transport, ctx.Carrier, failoverConfig(ctx))
}
