package runtime

import (
	"testing"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/linkmon"
	"drsnet/internal/netsim"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// flappingRailSpec is the e2e gray-failure fixture: node 1's rail-1
// NIC dies cleanly at 1 s, then its rail-0 NIC — the only path left —
// flaps with an 8 s period from 10 s on. Every transition node 0 takes
// for peer 1 after that is churn a damping policy could suppress.
func flappingRailSpec(damp linkmon.Damping) ClusterSpec {
	cl := topology.Dual(3)
	return ClusterSpec{
		Nodes:    3,
		Protocol: ProtoDRS,
		Seed:     7,
		Duration: 80 * time.Second,
		Tunables: Tunables{FlapDamping: damp},
		Flows:    []Flow{{From: 0, To: 1, Interval: 500 * time.Millisecond}},
		Faults:   []Fault{{At: time.Second, Comp: cl.NIC(1, 1)}},
		Impairments: []chaos.Spec{{
			Comp:       cl.NIC(1, 0),
			Start:      10 * time.Second,
			FlapPeriod: 8 * time.Second,
			FlapDuty:   0.5,
		}},
	}
}

// testDamping is aggressive enough to suppress on the second flap of
// the 8 s cycle: the half-life is long relative to the flap period, so
// the penalty barely decays between the down-transition that charges
// it and the recovery that consults it.
func testDamping() linkmon.Damping {
	return linkmon.Damping{Penalty: 1, Suppress: 1.2, Reuse: 0.4, HalfLife: 30 * time.Second, Max: 6}
}

// routeChurn counts node 0's route-installed/route-lost transitions
// for peer 1.
func routeChurn(log *trace.Log) int {
	n := 0
	for _, e := range log.Events() {
		if e.Node != 0 || e.Peer != 1 {
			continue
		}
		if e.Kind == trace.KindRouteInstalled || e.Kind == trace.KindRouteLost {
			n++
		}
	}
	return n
}

// TestDampingReducesChurnEndToEnd drives the full stack — scenario
// spec, chaos injector, DRS daemons — and checks the ISSUE's headline
// property: at identical seeds and identical flap schedules, damping
// yields strictly fewer route transitions than the undamped run.
func TestDampingReducesChurnEndToEnd(t *testing.T) {
	undamped, err := Run(flappingRailSpec(linkmon.Damping{}))
	if err != nil {
		t.Fatal(err)
	}
	damped, err := Run(flappingRailSpec(testDamping()))
	if err != nil {
		t.Fatal(err)
	}
	u, d := routeChurn(undamped.Trace), routeChurn(damped.Trace)
	if u < 6 {
		t.Fatalf("undamped churn = %d; flap schedule too gentle to be probative", u)
	}
	if d >= u {
		t.Fatalf("route churn with damping = %d, without = %d; want strictly fewer", d, u)
	}
	// Damping must have actually engaged, not merely raced the flaps.
	if n := len(damped.Trace.Filter(trace.KindRouteDamped)); n == 0 {
		t.Fatal("no route-damped events in the damped run")
	}
	if n := len(undamped.Trace.Filter(trace.KindRouteDamped)); n != 0 {
		t.Fatalf("%d route-damped events with damping disabled", n)
	}
}

// TestImpairedRunIsDeterministic re-runs an impaired, damped spec and
// requires identical outcomes — the determinism contract extends to
// the chaos layer.
func TestImpairedRunIsDeterministic(t *testing.T) {
	spec := flappingRailSpec(testDamping())
	spec.Impairments = append(spec.Impairments, chaos.Spec{
		Comp:   topology.Dual(3).Backplane(1),
		Start:  2 * time.Second,
		Impair: netsim.Impairment{Loss: 0.05, Jitter: 200 * time.Microsecond},
	})
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Flows[0].Delivered != b.Flows[0].Delivered || a.Flows[0].Sent != b.Flows[0].Sent {
		t.Fatalf("delivery diverged: %+v vs %+v", a.Flows[0], b.Flows[0])
	}
	ea, eb := a.Trace.Events(), b.Trace.Events()
	if len(ea) != len(eb) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("trace[%d] diverged: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// TestRunRejectsBadImpairment checks the spec-level gate: Build must
// refuse an impairment schedule that fails chaos validation.
func TestRunRejectsBadImpairment(t *testing.T) {
	spec := flappingRailSpec(linkmon.Damping{})
	spec.Impairments[0].Impair.Loss = 2
	if _, err := Build(spec); err == nil {
		t.Fatal("Build accepted loss probability 2")
	}
}
