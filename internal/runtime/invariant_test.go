package runtime

import (
	"context"
	"testing"
	"time"

	"drsnet/internal/failover"
	"drsnet/internal/invariant"
	"drsnet/internal/routing"
	"drsnet/internal/topology"
)

// invariantSpec is testSpec (one flow, mid-run NIC failure) for an
// arbitrary protocol, run under the invariant checker. RequireDelivery
// stays off: convergence protocols legitimately lose packets while
// they relearn routes — the harness asserts loop-freedom and bounded
// stretch, which nothing may violate.
func invariantSpec(proto string) ClusterSpec {
	s := testSpec()
	s.Protocol = proto
	s.Invariant = &invariant.Config{}
	return s
}

// TestInvariantCleanAcrossProtocols retrofits the forwarding-trace
// checker onto the established per-protocol regression scenario: every
// registered protocol must route its traffic loop-free and within the
// stretch bound, including across the failure.
func TestInvariantCleanAcrossProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		t.Run(proto, func(t *testing.T) {
			run, err := Run(invariantSpec(proto))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			rep := run.Invariant
			if rep == nil {
				t.Fatal("spec enabled the checker but Result.Invariant is nil")
			}
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			if proto == ProtoStatic {
				// The strawman's traffic dies with the failed NIC; it
				// still must not loop, but delivery proves nothing.
				return
			}
			if rep.Packets == 0 || rep.Delivered == 0 {
				t.Fatalf("checker observed packets=%d delivered=%d, want both positive",
					rep.Packets, rep.Delivered)
			}
		})
	}
}

// TestInvariantObservationOnly: installing the checker must not
// perturb the seeded simulation by a single event — same flows, same
// deliveries, same repair count as the uninstrumented run.
func TestInvariantObservationOnly(t *testing.T) {
	plain, err := Run(testSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	spec := testSpec()
	spec.Invariant = &invariant.Config{}
	checked, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if plain.Flows[0].Sent != checked.Flows[0].Sent ||
		plain.Flows[0].Delivered != checked.Flows[0].Delivered {
		t.Fatalf("checker perturbed the run: %+v vs %+v", plain.Flows[0], checked.Flows[0])
	}
	if len(plain.Repairs) != len(checked.Repairs) {
		t.Fatalf("repair counts differ: %d vs %d", len(plain.Repairs), len(checked.Repairs))
	}
	for i := range plain.Flows[0].Deliveries {
		if plain.Flows[0].Deliveries[i] != checked.Flows[0].Deliveries[i] {
			t.Fatalf("delivery %d moved: %v vs %v",
				i, plain.Flows[0].Deliveries[i], checked.Flows[0].Deliveries[i])
		}
	}
}

// TestInvariantCatchesBrokenProtocol is the end-to-end negative
// control: a protocol whose precomputed tables bounce traffic between
// two relays must be convicted by the checker — through the full
// Build/Run path, not a synthetic tap feed. The TTL absorbs the loop
// on the wire; the checker must flag it anyway.
func TestInvariantCatchesBrokenProtocol(t *testing.T) {
	const name = "broken-failover"
	Register(name, func(ctx BuildContext) (routing.Router, error) {
		table := failover.BuildRotor(ctx.Node, ctx.Spec.Nodes, ctx.Spec.Rails)
		// Nodes 0 and 1 each claim the other is the way to node 2.
		if ctx.Node == 0 {
			table.Next[2] = []failover.Hop{{Rail: 0, Via: 1}}
		}
		if ctx.Node == 1 {
			table.Next[2] = []failover.Hop{{Rail: 0, Via: 0}}
		}
		return failover.New(ctx.Transport, ctx.Carrier, table, failover.Config{TTL: 6})
	})
	defer Deregister(name)

	run, err := Run(ClusterSpec{
		Nodes:     3,
		Protocol:  name,
		Seed:      1,
		Duration:  2 * time.Second,
		Flows:     []Flow{{From: 0, To: 2, Interval: 500 * time.Millisecond}},
		Invariant: &invariant.Config{},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := run.Invariant
	if rep == nil || rep.Loops == 0 {
		t.Fatalf("checker missed the seeded loop: %+v", rep)
	}
	if rep.Err() == nil {
		t.Fatal("looping run reported clean")
	}
}

// TestFailoverDeliversThroughRuntime drives each failover variant
// through the full spec path with a strict delivery requirement: on a
// healthy cluster every packet must arrive, one hop, zero loss.
func TestFailoverDeliversThroughRuntime(t *testing.T) {
	for _, proto := range []string{ProtoFailoverRotor, ProtoFailoverArbor, ProtoFailoverBounce} {
		t.Run(proto, func(t *testing.T) {
			run, err := Run(ClusterSpec{
				Nodes:    4,
				Protocol: proto,
				Seed:     1,
				Duration: 3 * time.Second,
				// Stop the flow ahead of the horizon so the last packet
				// has time to land before Finalize (a send at the exact
				// horizon would be flagged as lost while merely in
				// flight).
				Flows:     []Flow{{From: 0, To: 3, Interval: 250 * time.Millisecond, Stop: 2500 * time.Millisecond}},
				Invariant: &invariant.Config{RequireDelivery: true},
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if run.Flows[0].Sent == 0 || run.Flows[0].Delivered != run.Flows[0].Sent {
				t.Fatalf("sent=%d delivered=%d, want lossless", run.Flows[0].Sent, run.Flows[0].Delivered)
			}
			if err := run.Invariant.Err(); err != nil {
				t.Fatal(err)
			}
			if run.Invariant.MaxHopsSeen != 1 {
				t.Fatalf("healthy cluster took %d hops", run.Invariant.MaxHopsSeen)
			}
		})
	}
}

// TestFailoverSurvivesNICFailureInstantly: the whole point of the
// static family — a NIC dies mid-run and the very next packet fails
// over, with no convergence window at all.
func TestFailoverSurvivesNICFailureInstantly(t *testing.T) {
	cl := topology.Dual(4)
	for _, proto := range []string{ProtoFailoverRotor, ProtoFailoverArbor, ProtoFailoverBounce} {
		t.Run(proto, func(t *testing.T) {
			run, err := Run(ClusterSpec{
				Nodes:    4,
				Protocol: proto,
				Seed:     1,
				Duration: 4 * time.Second,
				Flows:    []Flow{{From: 0, To: 3, Interval: 250 * time.Millisecond, Stop: 3500 * time.Millisecond}},
				Faults:   []Fault{{At: 2 * time.Second, Comp: cl.NIC(3, 1)}},
				// Destination 3's primary rail for traffic is 3%2 = 1,
				// so the fault hits the preferred path.
				Invariant: &invariant.Config{RequireDelivery: true},
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := run.Invariant.Err(); err != nil {
				t.Fatal(err)
			}
			if run.Flows[0].Delivered != run.Flows[0].Sent {
				t.Fatalf("sent=%d delivered=%d: static failover lost traffic across a detectable failure",
					run.Flows[0].Sent, run.Flows[0].Delivered)
			}
		})
	}
}

// TestRunManyInvariantWorkersInvariant: invariant verdicts are part of
// the determinism contract — identical at every worker count.
func TestRunManyInvariantWorkersInvariant(t *testing.T) {
	specs := func() []ClusterSpec {
		var out []ClusterSpec
		for _, proto := range []string{ProtoDRS, ProtoFailoverArbor, ProtoFailoverBounce} {
			out = append(out, invariantSpec(proto))
		}
		return out
	}
	base, err := RunMany(context.Background(), specs(), 1)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	for _, workers := range []int{2, 8, 0} {
		got, err := RunMany(context.Background(), specs(), workers)
		if err != nil {
			t.Fatalf("RunMany(%d): %v", workers, err)
		}
		for i := range base {
			a, b := base[i].Invariant, got[i].Invariant
			if a.Packets != b.Packets || a.Delivered != b.Delivered ||
				a.Loops != b.Loops || a.Revisits != b.Revisits ||
				a.StretchViolations != b.StretchViolations || a.MaxHopsSeen != b.MaxHopsSeen {
				t.Fatalf("workers=%d spec %d: %+v vs %+v", workers, i, a, b)
			}
		}
	}
}
