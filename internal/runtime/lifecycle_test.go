package runtime

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/linkmon"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// crashEpisodeSpec is the e2e crash fixture: node 2's rail-0 NIC dies
// at 1 s, so every daemon's route to node 2 has moved off the cold
// default by the time node 1 crashes at 10 s. Whether node 1 restarts
// at 14 s warm or cold is the only difference between the two runs —
// and the thing the time-to-first-repaired-route comparison isolates.
func crashEpisodeSpec(warm bool) ClusterSpec {
	cl := topology.Dual(4)
	return ClusterSpec{
		Nodes:    4,
		Protocol: ProtoDRS,
		Seed:     11,
		Duration: 30 * time.Second,
		Flows:    []Flow{{From: 0, To: 1, Interval: 250 * time.Millisecond}},
		Faults:   []Fault{{At: time.Second, Comp: cl.NIC(2, 0)}},
		Crashes:  []chaos.CrashSpec{{Node: 1, At: 10 * time.Second, RestartAt: 14 * time.Second, Warm: warm}},
	}
}

// recoveryAfterRestart returns the delay from node's restart marker to
// its first repaired route of the new life, and whether one occurred.
func recoveryAfterRestart(log *trace.Log, node int) (time.Duration, bool) {
	var restartedAt time.Duration
	restarted := false
	for _, e := range log.Events() {
		if e.Node != node {
			continue
		}
		switch e.Kind {
		case trace.KindNodeRestarted:
			restartedAt, restarted = e.At, true
		case trace.KindRouteInstalled:
			if restarted {
				return e.At - restartedAt, true
			}
		}
	}
	return 0, false
}

// TestWarmBeatsColdRecovery is the ISSUE's headline e2e property: at
// equal seeds and an identical crash episode, a warm start — restoring
// the crash-time checkpoint — strictly reduces the time to the first
// repaired route compared to a cold start that must re-learn the
// failure from scratch.
func TestWarmBeatsColdRecovery(t *testing.T) {
	cold, err := Run(crashEpisodeSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(crashEpisodeSpec(true))
	if err != nil {
		t.Fatal(err)
	}

	coldRec, ok := recoveryAfterRestart(cold.Trace, 1)
	if !ok {
		t.Fatal("cold run: no repaired route after the restart")
	}
	warmRec, ok := recoveryAfterRestart(warm.Trace, 1)
	if !ok {
		t.Fatal("warm run: no repaired route after the restart")
	}
	if warmRec >= coldRec {
		t.Fatalf("warm recovery %v not strictly faster than cold %v", warmRec, coldRec)
	}

	// The traces carry the start-kind markers and, warm only, the
	// restored route.
	wantDetail := func(log *trace.Log, kind trace.Kind, substr string) bool {
		for _, e := range log.Events() {
			if e.Kind == kind && strings.Contains(e.Detail, substr) {
				return true
			}
		}
		return false
	}
	if !wantDetail(cold.Trace, trace.KindNodeRestarted, "cold start") {
		t.Fatal("cold run missing its cold-start marker")
	}
	if !wantDetail(warm.Trace, trace.KindNodeRestarted, "warm start") {
		t.Fatal("warm run missing its warm-start marker")
	}
	if !wantDetail(warm.Trace, trace.KindRouteInstalled, "warm restore") {
		t.Fatal("warm run restored no route")
	}
	if wantDetail(cold.Trace, trace.KindRouteInstalled, "warm restore") {
		t.Fatal("cold run restored a checkpoint it should not have")
	}

	// Both lives deliver: the flow into node 1 resumes after the
	// restart in either mode.
	for name, res := range map[string]*Result{"cold": cold, "warm": warm} {
		resumed := false
		for _, at := range res.Flows[0].Deliveries {
			if at > 14*time.Second {
				resumed = true
			}
		}
		if !resumed {
			t.Fatalf("%s run: flow never resumed after the restart", name)
		}
		// The dead incarnation's repair records survive the restart:
		// node 1 repaired its route to 2 before the crash, and Finish
		// must still report it.
		banked := false
		for _, rep := range res.Repairs {
			if rep.Node == 1 && rep.RepairedAt < 10*time.Second {
				banked = true
			}
		}
		if !banked {
			t.Fatalf("%s run: pre-crash repairs of node 1 lost by the restart", name)
		}
	}
}

// TestAdaptiveRTONoFalseLinkDown is the ISSUE's safety criterion: on an
// impairment-free rail the adaptive deadline must never fire a false
// link-down — the Max clamp before the first sample and the 4·rttvar
// margin after it guarantee the probe always beats its own timer.
func TestAdaptiveRTONoFalseLinkDown(t *testing.T) {
	res, err := Run(ClusterSpec{
		Nodes:    4,
		Protocol: ProtoDRS,
		Seed:     5,
		Duration: 30 * time.Second,
		Tunables: Tunables{AdaptiveRTO: linkmon.DefaultRTO()},
		Flows:    []Flow{{From: 0, To: 3, Interval: 200 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace.Events() {
		if e.Kind == trace.KindLinkDown {
			t.Fatalf("false link-down on a healthy rail: %+v", e)
		}
	}
	if len(res.Repairs) != 0 {
		t.Fatalf("repairs on a healthy cluster: %+v", res.Repairs)
	}
}

// TestCrashRunDeterministic: the crash–restart machinery sits inside
// the canonical scheduling order, so an identical spec yields a
// byte-identical run.
func TestCrashRunDeterministic(t *testing.T) {
	a, err := Run(crashEpisodeSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(crashEpisodeSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Trace.Events(), b.Trace.Events()) {
		t.Fatal("identical crash specs produced different traces")
	}
	if !reflect.DeepEqual(a.Flows, b.Flows) || !reflect.DeepEqual(a.Repairs, b.Repairs) {
		t.Fatal("identical crash specs produced different results")
	}
}

// TestCrashAdvancesIncarnation drives the cluster by hand and checks
// the bookkeeping: each restart bumps the node's incarnation, dead
// time blackholes the node, and the trace carries one marker pair.
func TestCrashAdvancesIncarnation(t *testing.T) {
	spec := crashEpisodeSpec(true)
	c, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.ScheduleFlows()
	c.ScheduleFaults()
	c.ScheduleCrashes()

	c.RunUntil(12 * time.Second) // mid-outage
	if c.Network().NodeUp(1) {
		t.Fatal("network still carries frames for the crashed node")
	}
	c.RunUntil(spec.Duration)
	c.StopRouters()
	if err := c.LifecycleErr(); err != nil {
		t.Fatal(err)
	}
	if !c.Network().NodeUp(1) {
		t.Fatal("node never restored on the network")
	}
	if c.incarnation[1] != 2 {
		t.Fatalf("incarnation after one restart = %d, want 2", c.incarnation[1])
	}
	if c.incarnation[0] != 1 {
		t.Fatalf("uncrashed node's incarnation = %d, want 1", c.incarnation[0])
	}
	crashed, restarted := 0, 0
	for _, e := range c.TraceLog().Events() {
		switch e.Kind {
		case trace.KindNodeCrashed:
			crashed++
		case trace.KindNodeRestarted:
			restarted++
		}
	}
	if crashed != 1 || restarted != 1 {
		t.Fatalf("markers = %d crashed, %d restarted, want 1 and 1", crashed, restarted)
	}
}

// TestCrashIgnoredWithoutLifecycle: on a cluster whose spec carries no
// crash script (and thus no lifecycle), Crash and Restart are no-ops —
// the gate that keeps the legacy goldens byte-identical.
func TestCrashIgnoredWithoutLifecycle(t *testing.T) {
	c, err := Build(ClusterSpec{Nodes: 3, Protocol: ProtoDRS, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.Crash(1, true)
	c.Restart(1)
	if !c.Network().NodeUp(1) {
		t.Fatal("Crash acted on a lifecycle-free cluster")
	}
	if n := len(c.TraceLog().Events()); n != 0 {
		t.Fatalf("lifecycle events on a lifecycle-free cluster: %d", n)
	}
	c.StopRouters()
}
