package runtime

import (
	"fmt"

	"drsnet/internal/core"
	"drsnet/internal/routing"
)

// liveCarrier is the carrier oracle handed to routers assembled
// outside the simulator. Real transports (UDP, in-memory) expose no
// physical-layer loss-of-signal, so carrier always reads up; the
// static fast-failover family consequently degrades to its primary
// path when run live, while probe-based protocols (DRS, the
// baselines) are unaffected — they never consult the oracle.
type liveCarrier struct{}

// CarrierUp implements failover.Sensor.
func (liveCarrier) CarrierUp(peer, rail int) bool { return true }

// BuildNode assembles one node's router outside the simulator. The
// live daemon (cmd/drsd) and the hermetic multi-daemon tests hand it
// a real transport and clock and get back the same registry-built
// router the simulator would construct from the spec — one code path
// for protocol assembly, whatever the seams underneath.
//
// incarnation and restore drive the crash–restart lifecycle exactly
// as the simulator's Crash/Restart do: a first boot passes (0, nil)
// — or (1, nil) with the lifecycle enabled — and a warm restart
// passes the previous life's checkpoint with a strictly newer
// incarnation.
//
// Only dual-rail cluster shapes are supported: switched fabrics have
// no per-node transport of this form.
func BuildNode(spec ClusterSpec, node int, tr routing.Transport, clk routing.Clock,
	incarnation uint32, restore *core.Checkpoint) (routing.Router, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	if spec.fabric != nil {
		return nil, fmt.Errorf("runtime: live node assembly supports dual-rail clusters only, not %q fabrics", spec.Topology.Kind)
	}
	if tr == nil || clk == nil {
		return nil, fmt.Errorf("runtime: nil transport or clock")
	}
	if node < 0 || node >= spec.Nodes {
		return nil, fmt.Errorf("runtime: node %d out of range [0,%d)", node, spec.Nodes)
	}
	if tr.Node() != node || tr.Nodes() != spec.Nodes || tr.Rails() != spec.Rails {
		return nil, fmt.Errorf("runtime: transport shape node %d of %d×%d does not match spec node %d of %d×%d",
			tr.Node(), tr.Nodes(), tr.Rails(), node, spec.Nodes, spec.Rails)
	}
	builder, err := Lookup(spec.Protocol)
	if err != nil {
		return nil, err
	}
	ctx := BuildContext{
		Node:        node,
		Transport:   tr,
		Clock:       clk,
		Spec:        &spec,
		Carrier:     liveCarrier{},
		Incarnation: incarnation,
		Restore:     restore,
	}
	r, err := builder(ctx)
	if err != nil {
		return nil, fmt.Errorf("runtime: building %s router for node %d: %v", spec.Protocol, node, err)
	}
	return r, nil
}
