package runtime

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/clock"
	"drsnet/internal/core"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/trace"
	"drsnet/internal/transport"
)

// liveSpec is the shared 3-node fixture for the hermetic daemon
// tests: DRS over dual rails with a fast probe cadence and the
// crash–restart lifecycle enabled.
func liveSpec(log *trace.Log) ClusterSpec {
	return ClusterSpec{
		Nodes:    3,
		Protocol: ProtoDRS,
		Duration: 2 * time.Second,
		Tunables: Tunables{
			ProbeInterval: 50 * time.Millisecond,
			MissThreshold: 2,
			Lifecycle:     true,
		},
		Trace: log,
	}
}

// buildLiveCluster assembles and starts one router per node over the
// shared in-memory transport, all at incarnation 1.
func buildLiveCluster(t *testing.T, spec ClusterSpec, mem *transport.Mem, clk routing.Clock) []routing.Router {
	t.Helper()
	routers := make([]routing.Router, spec.Nodes)
	for n := range routers {
		r, err := BuildNode(spec, n, mem.Node(n), clk, 1, nil)
		if err != nil {
			t.Fatalf("node %d: %v", n, err)
		}
		if err := r.Start(); err != nil {
			t.Fatalf("node %d start: %v", n, err)
		}
		routers[n] = r
	}
	return routers
}

func daemonStatus(t *testing.T, r routing.Router) core.Status {
	t.Helper()
	d, ok := r.(*core.Daemon)
	if !ok {
		t.Fatalf("router is %T, want *core.Daemon", r)
	}
	return d.Status()
}

func allDirect(s core.Status) bool {
	if len(s.Peers) == 0 {
		return false
	}
	for _, p := range s.Peers {
		if p.Route != "direct" {
			return false
		}
	}
	return true
}

func peerEntry(t *testing.T, s core.Status, peer int) core.PeerStatus {
	t.Helper()
	for _, p := range s.Peers {
		if p.Peer == peer {
			return p
		}
	}
	t.Fatalf("node %d status has no entry for peer %d: %+v", s.Node, peer, s.Peers)
	return core.PeerStatus{}
}

// TestHermeticLifecycle is the satellite's in-process version of the
// 3-process smoke test: three DRS daemons over the in-memory
// transport and a drained wall clock converge, one fail-stops without
// a goodbye, the survivors mark every rail to it down, and a warm
// restart from its checkpoint rejoins at incarnation 2 — all under
// plain `go test`, no sockets, no goroutine races, no real time.
func TestHermeticLifecycle(t *testing.T) {
	clk := clock.NewManual()
	mem := transport.NewMem(3, 2, clk, 200*time.Microsecond)
	spec := liveSpec(nil)
	routers := buildLiveCluster(t, spec, mem, clk)

	// Converge: a handful of probe rounds settles every route direct.
	clk.Advance(500 * time.Millisecond)
	for n, r := range routers {
		if s := daemonStatus(t, r); !allDirect(s) || s.Incarnation != 1 {
			t.Fatalf("node %d not converged: %+v", n, s)
		}
	}

	// Crash node 2: snapshot the warm-start image the moment before
	// the process dies (the periodic checkpointer's view), then
	// blackhole its NICs and stop the router without a goodbye.
	cp := routers[2].(*core.Daemon).Checkpoint()
	mem.FailNode(2)
	routers[2].Stop()

	// The survivors' probes time out; every rail to node 2 goes down
	// and its direct route is demoted.
	clk.Advance(500 * time.Millisecond)
	for _, n := range []int{0, 1} {
		s := daemonStatus(t, routers[n])
		p := peerEntry(t, s, 2)
		if p.Route == "direct" {
			t.Fatalf("node %d still routes direct to crashed node 2: %+v", n, p)
		}
		for rail, r := range p.Rails {
			if r.Up {
				t.Fatalf("node %d rail %d to crashed node 2 still up", n, rail)
			}
		}
	}

	// Warm restart: incarnation 2 from the checkpoint. The rejoin
	// broadcast purges the previous life; probes re-establish direct
	// routes on both sides.
	mem.RestoreNode(2)
	r2, err := BuildNode(spec, 2, mem.Node(2), clk, cp.Incarnation+1, cp)
	if err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	if err := r2.Start(); err != nil {
		t.Fatalf("warm restart start: %v", err)
	}
	routers[2] = r2

	clk.Advance(500 * time.Millisecond)
	if s := daemonStatus(t, r2); s.Incarnation != 2 || !allDirect(s) {
		t.Fatalf("restarted node not converged at incarnation 2: %+v", s)
	}
	for _, n := range []int{0, 1} {
		s := daemonStatus(t, routers[n])
		p := peerEntry(t, s, 2)
		if p.Route != "direct" || p.Incarnation != 2 {
			t.Fatalf("node %d did not see the warm rejoin: %+v", n, p)
		}
	}
	for _, r := range routers {
		r.Stop()
	}
}

// parityRun drives one fixed NIC-failure episode over the in-memory
// transport against the given clock and returns the full protocol
// event sequence. advanceTo runs the clock's timers up to an absolute
// virtual instant.
func parityRun(t *testing.T, clk routing.Clock, advanceTo func(time.Duration)) []string {
	t.Helper()
	log := trace.NewLog(4096)
	spec := liveSpec(log)
	mem := transport.NewMem(3, 2, clk, 200*time.Microsecond)
	routers := buildLiveCluster(t, spec, mem, clk)

	advanceTo(325 * time.Millisecond)
	mem.SetNIC(1, 0, false)
	advanceTo(1 * time.Second)
	mem.SetNIC(1, 0, true)
	advanceTo(2 * time.Second)

	for _, r := range routers {
		r.Stop()
	}
	events := log.Events()
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.String()
	}
	if len(out) == 0 {
		t.Fatal("scenario produced no protocol events")
	}
	return out
}

// TestClockParity is the regression behind the clock seam: the same
// scenario driven by the simulator's scheduler (via the clock.Sim
// adapter) and by a drained wall clock must produce the identical
// protocol event sequence. Both implementations execute timers in
// (deadline, scheduling-order) total order, so any divergence here
// means one of them broke the determinism contract.
func TestClockParity(t *testing.T) {
	sched := simtime.NewScheduler()
	simEvents := parityRun(t, clock.Sim{Sched: sched}, func(to time.Duration) {
		sched.RunUntil(simtime.Time(to))
	})

	wall := clock.NewManual()
	wallEvents := parityRun(t, wall, func(to time.Duration) {
		wall.RunUntil(to)
	})

	if len(simEvents) != len(wallEvents) {
		t.Fatalf("event count diverged: sim %d, wall %d", len(simEvents), len(wallEvents))
	}
	for i := range simEvents {
		if simEvents[i] != wallEvents[i] {
			t.Fatalf("event %d diverged:\n sim:  %s\n wall: %s", i, simEvents[i], wallEvents[i])
		}
	}
	// The episode must actually exercise the protocol: a link-down on
	// the killed NIC and a recovery after its restore.
	var sawDown, sawUp bool
	for _, e := range simEvents {
		if !sawDown && strings.Contains(e, "link-down") {
			sawDown = true
		}
		if sawDown && strings.Contains(e, "link-up") {
			sawUp = true
		}
	}
	if !sawDown || !sawUp {
		t.Fatalf("scenario missed the fault episode (down=%v up=%v) in %d events", sawDown, sawUp, len(simEvents))
	}
}
