package runtime

import (
	"testing"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/overload"
	"drsnet/internal/routing"
)

func TestOverloadTunableReachesDaemon(t *testing.T) {
	spec := ClusterSpec{
		Nodes:    3,
		Protocol: ProtoDRS,
		Duration: 5 * time.Second,
		Tunables: Tunables{Overload: overload.Default()},
	}
	c, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	d, ok := c.Daemon(0)
	if !ok {
		t.Fatal("node 0 is not a DRS daemon")
	}
	if d.Status().Overload == nil {
		t.Fatal("overload tunable set but the daemon reports no overload gauges")
	}
	c.StopRouters()
}

func TestOverloadStrayTunableRejected(t *testing.T) {
	spec := ClusterSpec{
		Nodes:    3,
		Protocol: ProtoDRS,
		Duration: 5 * time.Second,
		Tunables: Tunables{Overload: overload.Config{ProbeRate: 1}}, // Enabled is false
	}
	if _, err := Build(spec); err == nil {
		t.Fatal("stray overload field on a disabled config was accepted")
	}
}

// TestResultCountersBankAcrossRestart is the per-node accounting the
// storm campaign rests on: Result.Counters must cover every
// incarnation of a crashed-and-restarted node, not just its last life.
func TestResultCountersBankAcrossRestart(t *testing.T) {
	base := ClusterSpec{
		Nodes:    3,
		Protocol: ProtoDRS,
		Seed:     7,
		Duration: 20 * time.Second,
		Tunables: Tunables{Lifecycle: true},
	}
	whole, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	crashed := base
	crashed.Crashes = []chaos.CrashSpec{{Node: 1, At: 8 * time.Second, RestartAt: 12 * time.Second}}
	split, err := Run(crashed)
	if err != nil {
		t.Fatal(err)
	}

	if len(split.Counters) != 3 {
		t.Fatalf("Counters has %d nodes, want 3", len(split.Counters))
	}
	// Node 1 was down for 4 of 20 seconds; if only the last life were
	// reported, its probe count would be well under half the uncrashed
	// run's. Banked across lives it stays in the same ballpark.
	wholeProbes := whole.Counters[1][routing.CtrProbesSent]
	splitProbes := split.Counters[1][routing.CtrProbesSent]
	if wholeProbes == 0 {
		t.Fatal("uncrashed run recorded no probes")
	}
	if splitProbes <= wholeProbes/2 {
		t.Fatalf("crashed node's banked probe count %d vs uncrashed %d: first life lost",
			splitProbes, wholeProbes)
	}
}

// TestResultCountersOneWayCrashNotDoubled pins the fix for the
// one-way-crash double count: a node that dies and never restarts must
// contribute its records exactly once.
func TestResultCountersOneWayCrashNotDoubled(t *testing.T) {
	spec := ClusterSpec{
		Nodes:    3,
		Protocol: ProtoDRS,
		Seed:     7,
		Duration: 20 * time.Second,
		Crashes:  []chaos.CrashSpec{{Node: 1, At: 10 * time.Second}},
	}
	c, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.ScheduleCrashes()
	c.RunUntil(10*time.Second + time.Millisecond)
	// The crash just banked the dead life; capture the banked total.
	banked := c.pastCounters[1][routing.CtrProbesSent]
	if banked == 0 {
		t.Fatal("no probes banked at crash time")
	}
	c.RunUntil(spec.Duration)
	c.StopRouters()
	res := c.Finish()
	if got := res.Counters[1][routing.CtrProbesSent]; got != banked {
		t.Fatalf("dead node's probe count %d != banked %d (double-counted)", got, banked)
	}
}
