package runtime

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/netsim"
	"drsnet/internal/trace"
)

// partitionSpec is a small DRS cluster with a five-second partition
// window between nodes 0 and 1 on rail 0 (direction dir), carrying a
// flow straight through the cut.
func partitionSpec(dir netsim.Direction) ClusterSpec {
	return ClusterSpec{
		Nodes:    3,
		Protocol: ProtoDRS,
		Seed:     7,
		Duration: 12 * time.Second,
		Tunables: Tunables{ProbeInterval: 500 * time.Millisecond, MissThreshold: 2,
			StrictLinkEvidence: true},
		Flows: []Flow{{From: 0, To: 1, Interval: 100 * time.Millisecond}},
		Partitions: []chaos.PartitionSpec{{
			A: 0, B: 1, Rail: 0, Direction: dir,
			Start: 3 * time.Second, Stop: 8 * time.Second,
		}},
	}
}

// TestAsymmetricPartitionRoutedAround is the asymmetric-fault
// acceptance test: rail 0 carries 1's frames to 0 but eats 0's frames
// to 1 (DirTx). No hardware sensor fires — carrier stays up — yet both
// sides must notice via probe misses (0 never gets replies, 1 never
// hears probes), declare the rail down, and repair the route onto
// rail 1, keeping the flow alive through the window.
func TestAsymmetricPartitionRoutedAround(t *testing.T) {
	spec := partitionSpec(netsim.DirTx)
	c, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	c.ScheduleFlows()
	c.SchedulePartitions()
	c.RunUntil(spec.Duration)
	c.StopRouters()
	run := c.Finish()

	// The cut really ate frames (and only on rail 0).
	if got := c.Network().Stats(0).DroppedPartitioned; got == 0 {
		t.Fatal("partition window passed without a single partition drop")
	}
	if got := c.Network().Stats(1).DroppedPartitioned; got != 0 {
		t.Fatalf("rail 1 recorded %d partition drops, want 0", got)
	}

	// Both endpoints detected the one-way cut and repaired onto rail 1.
	repairedVia1 := map[int]bool{}
	for _, rep := range run.Repairs {
		if rep.Rail == 1 && (rep.Node == 0 && rep.Peer == 1 || rep.Node == 1 && rep.Peer == 0) {
			repairedVia1[rep.Node] = true
		}
	}
	if !repairedVia1[0] || !repairedVia1[1] {
		t.Fatalf("repairs onto rail 1 by node: %v, want both 0 and 1 (repairs %+v)",
			repairedVia1, run.Repairs)
	}
	if run.Trace.Count(trace.KindLinkDown) == 0 {
		t.Fatal("no link-down events across an asymmetric partition")
	}

	// The flow kept delivering inside the partition window (after the
	// repair settles) and after the heal.
	var during, after bool
	for _, at := range run.Flows[0].Deliveries {
		if at >= 5*time.Second && at < 8*time.Second {
			during = true
		}
		if at >= 9*time.Second {
			after = true
		}
	}
	if !during {
		t.Fatal("no deliveries during the partition window — DRS did not route around the cut")
	}
	if !after {
		t.Fatal("no deliveries after the heal")
	}
}

// TestSymmetricPartitionRun: the classic split heals and the flow
// recovers; the whole run is deterministic under a fixed seed.
func TestSymmetricPartitionRun(t *testing.T) {
	a, err := Run(partitionSpec(netsim.DirBoth))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Flows[0].Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	var after bool
	for _, at := range a.Flows[0].Deliveries {
		if at >= 9*time.Second {
			after = true
		}
	}
	if !after {
		t.Fatal("no deliveries after the heal")
	}

	b, err := Run(partitionSpec(netsim.DirBoth))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Flows[0].Sent != b.Flows[0].Sent || a.Flows[0].Delivered != b.Flows[0].Delivered ||
		len(a.Repairs) != len(b.Repairs) {
		t.Fatalf("partitioned runs diverge: %+v/%d repairs vs %+v/%d repairs",
			a.Flows[0], len(a.Repairs), b.Flows[0], len(b.Repairs))
	}
}

// TestPartitionSpecValidation: malformed partition scripts and fabric
// topologies are rejected at Build time with precise errors.
func TestPartitionSpecValidation(t *testing.T) {
	bad := partitionSpec(netsim.DirBoth)
	bad.Partitions[0].B = 9
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "unknown node 9") {
		t.Fatalf("bad partition node: err %v", err)
	}

	fab := partitionSpec(netsim.DirBoth)
	fab.Nodes, fab.Rails = 0, 0
	fab.Topology = TopologySpec{Kind: "fatTree", K: 4}
	fab.Flows = nil
	if _, err := Run(fab); err == nil || !strings.Contains(err.Error(), "dual-rail only") {
		t.Fatalf("fabric partition: err %v", err)
	}
}
