// Package runtime is the unified cluster assembly layer: one
// declarative ClusterSpec (cluster shape, protocol name + tunables,
// application flows, fault schedule, seed, trace/metrics sinks) and
// one Build/Run path shared by every experiment harness, the scenario
// loader, the root drsnet facade and the examples.
//
// Protocols are pluggable: each routing implementation registers a
// constructor under a name (Register), and specs select one by that
// name. Adding a protocol therefore touches neither the experiment
// harnesses nor the command-line tools — they enumerate Protocols()
// instead of switching over a hardcoded enum.
//
// Determinism contract: Build/Run schedule simulator events in a
// fixed order — routers started in node order, then flows in spec
// order, then faults in spec order — so a spec always unfolds into
// the same simulation, and RunMany output is bit-identical for every
// worker count.
package runtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"drsnet/internal/core"
	"drsnet/internal/failover"
	"drsnet/internal/routing"
)

// Names of the built-in protocols (registered by this package).
const (
	ProtoDRS       = "drs"
	ProtoReactive  = "reactive"
	ProtoLinkState = "linkstate"
	ProtoStatic    = "static"
	// The static fast-failover family (package failover): precomputed
	// forwarding steered by local carrier sensing only.
	ProtoFailoverRotor  = "failover-rotor"
	ProtoFailoverArbor  = "failover-arbor"
	ProtoFailoverBounce = "failover-bounce"
)

// BuildContext is what a protocol constructor gets to work with: the
// node's transport and clock, plus the full spec for tunables and the
// trace sink.
type BuildContext struct {
	// Node is the local node index.
	Node int
	// Transport is the node's interface to the simulated network.
	Transport routing.Transport
	// Clock is the simulation clock.
	Clock routing.Clock
	// Spec is the cluster specification being built (tunables, trace).
	Spec *ClusterSpec
	// Carrier is the node's physical-layer carrier oracle (loss of
	// signal on its own ports), the only failure information the
	// static fast-failover family may use.
	Carrier failover.Sensor
	// Incarnation numbers this router's life (≥ 1) when the spec's
	// crash–restart lifecycle is enabled; zero otherwise. Each restart
	// of a node increments it.
	Incarnation uint32
	// Restore is the previous life's checkpoint for a warm restart
	// (DRS daemons only); nil for cold starts and first boots.
	Restore *core.Checkpoint
}

// Builder constructs one node's router for a registered protocol.
type Builder func(ctx BuildContext) (routing.Router, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Builder)
)

// Register makes a protocol constructor available to specs under name.
// It panics if the name is empty, the builder is nil, or the name is
// already taken — duplicate registration is always a programming
// error, and failing loudly at init time beats shadowing a protocol.
func Register(name string, b Builder) {
	if name == "" {
		panic("runtime: Register with empty protocol name")
	}
	if b == nil {
		panic(fmt.Sprintf("runtime: Register(%q) with nil builder", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("runtime: protocol %q registered twice", name))
	}
	registry[name] = b
}

// Deregister removes a registered protocol. It exists for tests that
// register stub protocols and must restore the registry afterwards;
// production code never deregisters.
func Deregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, name)
}

// Lookup returns the builder registered under name. The error for an
// unknown name lists every registered protocol.
func Lookup(name string) (Builder, error) {
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: unknown protocol %q (registered: %s)",
			name, strings.Join(Protocols(), ", "))
	}
	return b, nil
}

// Protocols returns the registered protocol names in sorted order —
// the canonical enumeration order of every compare-all-protocols
// table.
func Protocols() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}
