package runtime

import (
	"sort"
	"strings"
	"testing"

	"drsnet/internal/routing"
)

func stubBuilder(ctx BuildContext) (routing.Router, error) {
	return routing.NewStatic(ctx.Transport, 0)
}

func TestProtocolsSortedAndComplete(t *testing.T) {
	got := Protocols()
	want := []string{
		ProtoDRS,
		ProtoFailoverArbor, ProtoFailoverBounce, ProtoFailoverRotor,
		ProtoLinkState, ProtoReactive, ProtoStatic,
	}
	if len(got) != len(want) {
		t.Fatalf("Protocols() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Protocols() = %v, want %v", got, want)
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Protocols() not sorted: %v", got)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("duplicate Register did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "registered twice") {
			t.Fatalf("panic message %v, want mention of double registration", r)
		}
	}()
	Register(ProtoDRS, stubBuilder)
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Register with empty name did not panic")
		}
	}()
	Register("", stubBuilder)
}

func TestRegisterNilBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Register with nil builder did not panic")
		}
	}()
	Register("zstub-nil", nil)
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := Lookup("ospf")
	if err == nil {
		t.Fatalf("Lookup of unknown protocol succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"ospf"`) {
		t.Fatalf("error %q does not name the unknown protocol", msg)
	}
	for _, name := range []string{ProtoDRS, ProtoLinkState, ProtoReactive, ProtoStatic} {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not list registered protocol %q", msg, name)
		}
	}
}

func TestRegisterDeregisterRoundTrip(t *testing.T) {
	const name = "zstub-roundtrip"
	Register(name, stubBuilder)
	defer Deregister(name)

	if _, err := Lookup(name); err != nil {
		t.Fatalf("Lookup(%q) after Register: %v", name, err)
	}
	found := false
	for _, p := range Protocols() {
		if p == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Protocols() = %v missing %q", Protocols(), name)
	}

	Deregister(name)
	if _, err := Lookup(name); err == nil {
		t.Fatalf("Lookup(%q) after Deregister succeeded", name)
	}
}
