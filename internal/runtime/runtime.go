package runtime

import (
	"context"
	"fmt"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/core"
	"drsnet/internal/metrics"
	"drsnet/internal/netsim"
	"drsnet/internal/parallel"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/trace"
)

// Metrics collects runtime engine telemetry: RunMany records
// runmany.wall_ns and runmany.workers gauges plus a runmany.runs
// counter for each sharded fleet call.
var Metrics = metrics.NewSet()

// defaultPayload is the flow body when a spec leaves Payload nil.
var defaultPayload = []byte("flow")

// pair keys delivery accounting by (source, destination).
type pair struct{ from, to int }

// Cluster is one assembled simulation: scheduler, network, and one
// router per node built from the spec's registered protocol. Build
// wires everything but starts nothing, so callers that need custom
// instrumentation (extra timers, transport endpoints) can interpose
// between Build and Start. Most callers just use Run.
//
// The canonical event-scheduling order — the determinism contract —
// is Start (routers in node order), ScheduleFlows (spec order),
// ScheduleFaults (spec order), ScheduleImpairments (spec order), then
// RunUntil.
type Cluster struct {
	spec    ClusterSpec
	sched   *simtime.Scheduler
	net     *netsim.Network
	routers []routing.Router
	log     *trace.Log

	sent       []int
	deliveries map[pair][]time.Duration

	started          bool
	stopped          bool
	flowsScheduled   bool
	faultsScheduled  bool
	impairsScheduled bool
}

// Build assembles a cluster from the spec: deterministic scheduler,
// packet-level network, and one router per node constructed by the
// spec's registered protocol builder. Routers are created in node
// order and are not started.
func Build(spec ClusterSpec) (*Cluster, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	builder, err := Lookup(spec.Protocol)
	if err != nil {
		return nil, err
	}
	sched := simtime.NewScheduler()
	params := netsim.DefaultParams()
	params.LossRate = spec.LossRate
	params.Switched = spec.Switched
	net, err := netsim.New(sched, spec.topology(), params, spec.Seed)
	if err != nil {
		return nil, err
	}
	log := spec.Trace
	if log == nil {
		log = trace.NewLog(0)
	}
	c := &Cluster{
		spec:       spec,
		sched:      sched,
		net:        net,
		log:        log,
		sent:       make([]int, len(spec.Flows)),
		deliveries: make(map[pair][]time.Duration),
	}
	c.spec.Trace = log
	clock := routing.SimClock{Sched: sched}
	for node := 0; node < spec.Nodes; node++ {
		node := node
		r, err := builder(BuildContext{
			Node:      node,
			Transport: routing.NewSimNode(net, node),
			Clock:     clock,
			Spec:      &c.spec,
		})
		if err != nil {
			return nil, fmt.Errorf("runtime: building %s router for node %d: %v", spec.Protocol, node, err)
		}
		r.SetDeliverFunc(func(src int, data []byte) {
			at := sched.Now().Duration()
			k := pair{from: src, to: node}
			c.deliveries[k] = append(c.deliveries[k], at)
			if c.spec.OnDeliver != nil {
				c.spec.OnDeliver(at, src, node, data)
			}
		})
		c.routers = append(c.routers, r)
	}
	return c, nil
}

// Spec returns the normalized spec the cluster was built from.
func (c *Cluster) Spec() ClusterSpec { return c.spec }

// Scheduler exposes the simulation scheduler.
func (c *Cluster) Scheduler() *simtime.Scheduler { return c.sched }

// Network exposes the simulated network (fault injection, utilization).
func (c *Cluster) Network() *netsim.Network { return c.net }

// Clock returns the simulation clock routers were built with.
func (c *Cluster) Clock() routing.Clock { return routing.SimClock{Sched: c.sched} }

// TraceLog returns the protocol event log (the spec's sink, or the
// private log Build created).
func (c *Cluster) TraceLog() *trace.Log { return c.log }

// Router returns node's router.
func (c *Cluster) Router(node int) routing.Router { return c.routers[node] }

// Daemon returns node's DRS daemon when the spec's protocol is the
// DRS (or any protocol whose router is a *core.Daemon).
func (c *Cluster) Daemon(node int) (*core.Daemon, bool) {
	d, ok := c.routers[node].(*core.Daemon)
	return d, ok
}

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.sched.Now().Duration() }

// Start starts every router in node order. It must be called exactly
// once, before any simulated time elapses under flows or faults.
func (c *Cluster) Start() error {
	if c.started {
		return fmt.Errorf("runtime: cluster started twice")
	}
	c.started = true
	for _, r := range c.routers {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// ScheduleFlows installs the spec's application flows, in spec order.
func (c *Cluster) ScheduleFlows() {
	if c.flowsScheduled {
		return
	}
	c.flowsScheduled = true
	for i := range c.spec.Flows {
		i := i
		f := c.spec.Flows[i]
		payload := f.Payload
		if payload == nil {
			payload = defaultPayload
		}
		start := f.Interval
		switch {
		case f.Start > 0:
			start = f.Start
		case f.Start == StartImmediately:
			start = 0
		}
		var tick func()
		tick = func() {
			if f.Stop > 0 && c.sched.Now().Duration() >= f.Stop {
				return
			}
			// A router legitimately returns ErrNoRoute during warm-up
			// and outages; the message is simply lost, exactly as an
			// application datagram would be. The application still
			// tried, so the send counts either way.
			_ = c.routers[f.From].SendData(f.To, payload)
			c.sent[i]++
			c.sched.After(f.Interval, tick)
		}
		c.sched.After(start, tick)
	}
}

// ScheduleFaults installs the spec's component failure/repair script,
// in spec order.
func (c *Cluster) ScheduleFaults() {
	if c.faultsScheduled {
		return
	}
	c.faultsScheduled = true
	for _, f := range c.spec.Faults {
		f := f
		c.sched.At(simtime.Time(f.At), func() {
			if f.Restore {
				c.net.Restore(f.Comp)
			} else {
				c.net.Fail(f.Comp)
			}
		})
	}
}

// ScheduleImpairments installs the spec's gray-failure script, in
// spec order (the spec was validated at Build time).
func (c *Cluster) ScheduleImpairments() error {
	if c.impairsScheduled {
		return nil
	}
	c.impairsScheduled = true
	if len(c.spec.Impairments) == 0 {
		return nil
	}
	inj, err := chaos.NewInjector(c.net, c.spec.Impairments)
	if err != nil {
		return err
	}
	inj.Schedule()
	return nil
}

// RunUntil advances the simulation to absolute time t.
func (c *Cluster) RunUntil(t time.Duration) {
	c.sched.RunUntil(simtime.Time(t))
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d time.Duration) {
	c.sched.RunUntil(c.sched.Now().Add(d))
}

// StopRouters halts every router. The cluster can still be inspected
// but no longer routes.
func (c *Cluster) StopRouters() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, r := range c.routers {
		r.Stop()
	}
}

// FlowResult is one flow's delivery accounting.
type FlowResult struct {
	Flow Flow
	// Sent counts send attempts (including ones the router refused).
	Sent int
	// Delivered counts messages delivered for the flow's (from, to)
	// pair. Flows sharing a pair share the count.
	Delivered int
	// Deliveries are the delivery timestamps for the flow's pair.
	Deliveries []time.Duration
}

// Repair records one completed DRS route repair.
type Repair struct {
	Node, Peer int
	// LostAt and RepairedAt bound the repair.
	LostAt, RepairedAt time.Duration
	// Kind, Rail and Via describe the replacement route.
	Kind      string
	Rail, Via int
}

// Latency returns the repair duration.
func (r Repair) Latency() time.Duration { return r.RepairedAt - r.LostAt }

// Result is the outcome of one spec run.
type Result struct {
	Spec ClusterSpec
	// Flows reports per-flow accounting, in spec order.
	Flows []FlowResult
	// Repairs lists every completed DRS route repair, in node order
	// (empty for protocols without repair accounting).
	Repairs []Repair
	// Utilization is the fraction of each rail's capacity consumed.
	Utilization []float64
	// Trace is the protocol event log of the run.
	Trace *trace.Log
}

// DeliveriesFor returns the delivery timestamps recorded for the
// (from, to) pair.
func (c *Cluster) DeliveriesFor(from, to int) []time.Duration {
	return append([]time.Duration(nil), c.deliveries[pair{from, to}]...)
}

// Finish collects the run's outcome. Call after the simulation has
// been advanced (and, normally, after StopRouters).
func (c *Cluster) Finish() *Result {
	res := &Result{Spec: c.spec, Trace: c.log}
	totalSent, totalDelivered := 0, 0
	for i, f := range c.spec.Flows {
		del := c.deliveries[pair{f.From, f.To}]
		res.Flows = append(res.Flows, FlowResult{
			Flow:       f,
			Sent:       c.sent[i],
			Delivered:  len(del),
			Deliveries: append([]time.Duration(nil), del...),
		})
		totalSent += c.sent[i]
		totalDelivered += len(del)
	}
	for node := range c.routers {
		d, ok := c.Daemon(node)
		if !ok {
			continue
		}
		for _, rep := range d.Repairs() {
			res.Repairs = append(res.Repairs, Repair{
				Node:       node,
				Peer:       rep.Peer,
				LostAt:     rep.LostAt,
				RepairedAt: rep.RepairedAt,
				Kind:       rep.Route.Kind.String(),
				Rail:       rep.Route.Rail,
				Via:        rep.Route.Via,
			})
		}
	}
	for rail := 0; rail < c.spec.Rails; rail++ {
		res.Utilization = append(res.Utilization, c.net.Utilization(rail))
	}
	if m := c.spec.Metrics; m != nil {
		m.Gauge("run.sent").Set(int64(totalSent))
		m.Gauge("run.delivered").Set(int64(totalDelivered))
		m.Gauge("run.repairs").Set(int64(len(res.Repairs)))
		m.Counter("run.completed").Inc()
	}
	return res
}

// Run executes one spec end to end: Build, Start, flows, faults,
// advance to the spec's Duration, stop, collect. The event-scheduling
// order is fixed, so a spec always produces the same Result.
func Run(spec ClusterSpec) (*Result, error) {
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("runtime: spec duration must be positive")
	}
	c, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	c.ScheduleFlows()
	c.ScheduleFaults()
	if err := c.ScheduleImpairments(); err != nil {
		return nil, err
	}
	c.RunUntil(spec.Duration)
	c.StopRouters()
	return c.Finish(), nil
}

// RunMany executes every spec, sharded over the parallel sweep engine
// (workers goroutines; 0 = GOMAXPROCS). Each spec runs in its own
// private simulator and its Result lands in its own slot, so the
// output is bit-identical for every worker count. A nil ctx means
// context.Background().
func RunMany(ctx context.Context, specs []ClusterSpec, workers int) ([]*Result, error) {
	start := time.Now()
	results, err := parallel.Map(ctx, workers, len(specs), func(i int) (*Result, error) {
		return Run(specs[i])
	})
	if err != nil {
		return nil, err
	}
	Metrics.Gauge("runmany.wall_ns").Set(int64(time.Since(start)))
	Metrics.Gauge("runmany.workers").Set(int64(parallel.Workers(workers, len(specs))))
	Metrics.Counter("runmany.runs").Inc()
	return results, nil
}
