package runtime

import (
	"context"
	"fmt"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/core"
	"drsnet/internal/invariant"
	"drsnet/internal/metrics"
	"drsnet/internal/netsim"
	"drsnet/internal/parallel"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/trace"
)

// Metrics collects runtime engine telemetry: RunMany records
// runmany.wall_ns and runmany.workers gauges plus a runmany.runs
// counter for each sharded fleet call.
var Metrics = metrics.NewSet()

// defaultPayload is the flow body when a spec leaves Payload nil.
var defaultPayload = []byte("flow")

// pair keys delivery accounting by (source, destination).
type pair struct{ from, to int }

// carrierSensor adapts one node's view of the network to the static
// fast-failover family's physical-layer carrier oracle.
type carrierSensor struct {
	net  netsim.Net
	node int
}

// CarrierUp implements failover.Sensor.
func (s carrierSensor) CarrierUp(peer, rail int) bool {
	return s.net.CarrierUp(s.node, peer, rail)
}

// Cluster is one assembled simulation: scheduler, network, and one
// router per node built from the spec's registered protocol. Build
// wires everything but starts nothing, so callers that need custom
// instrumentation (extra timers, transport endpoints) can interpose
// between Build and Start. Most callers just use Run.
//
// The canonical event-scheduling order — the determinism contract —
// is Start (routers in node order), ScheduleFlows (spec order),
// ScheduleFaults (spec order), ScheduleImpairments (spec order),
// ScheduleCrashes (spec order), SchedulePartitions (spec order), then
// RunUntil.
type Cluster struct {
	spec    ClusterSpec
	sched   *simtime.Scheduler
	net     netsim.Net
	builder Builder
	routers []routing.Router
	log     *trace.Log
	checker *invariant.Checker

	sent       []int
	deliveries map[pair][]time.Duration

	// Crash–restart lifecycle state (allocated only when the spec's
	// Tunables.Lifecycle is on): the incarnation number each node's
	// next build gets, the checkpoint pending a warm restart, and the
	// repair and counter records of each node's dead incarnations (a
	// restart replaces the router, so Finish would otherwise lose them).
	incarnation  []uint32
	checkpoints  []*core.Checkpoint
	pastRepairs  [][]Repair
	pastCounters []map[string]int64
	// banked marks nodes whose current router's records were already
	// banked at crash time and not yet replaced by a restart; Finish
	// must not read the dead router again or a one-way crash would
	// double-count its repairs and counters.
	banked       []bool
	lifecycleErr error

	started             bool
	stopped             bool
	flowsScheduled      bool
	faultsScheduled     bool
	impairsScheduled    bool
	crashesScheduled    bool
	partitionsScheduled bool
}

// Build assembles a cluster from the spec: deterministic scheduler,
// packet-level network, and one router per node constructed by the
// spec's registered protocol builder. Routers are created in node
// order and are not started.
func Build(spec ClusterSpec) (*Cluster, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	builder, err := Lookup(spec.Protocol)
	if err != nil {
		return nil, err
	}
	sched := simtime.NewScheduler()
	params := netsim.DefaultParams()
	params.LossRate = spec.LossRate
	params.Switched = spec.Switched
	var net netsim.Net
	if f := spec.Fabric(); f != nil {
		net, err = netsim.NewFabricNet(sched, f, params, spec.Seed)
	} else {
		net, err = netsim.New(sched, spec.topology(), params, spec.Seed)
	}
	if err != nil {
		return nil, err
	}
	log := spec.Trace
	if log == nil {
		log = trace.NewLog(0)
	}
	c := &Cluster{
		spec:       spec,
		sched:      sched,
		net:        net,
		builder:    builder,
		log:        log,
		sent:       make([]int, len(spec.Flows)),
		deliveries: make(map[pair][]time.Duration),
	}
	c.spec.Trace = log
	if inv := c.spec.Invariant; inv != nil {
		cfg := *inv
		if cfg.Reachable == nil {
			cfg.Reachable = net.Reachable
		}
		c.checker = invariant.New(cfg)
		net.SetTap(c.checker)
	}
	if c.spec.Tunables.Lifecycle {
		c.incarnation = make([]uint32, spec.Nodes)
		for i := range c.incarnation {
			c.incarnation[i] = 1
		}
		c.checkpoints = make([]*core.Checkpoint, spec.Nodes)
		c.pastRepairs = make([][]Repair, spec.Nodes)
		c.pastCounters = make([]map[string]int64, spec.Nodes)
		c.banked = make([]bool, spec.Nodes)
	}
	for node := 0; node < spec.Nodes; node++ {
		r, err := c.buildRouter(node)
		if err != nil {
			return nil, err
		}
		c.routers = append(c.routers, r)
	}
	return c, nil
}

// buildRouter constructs node's router from the spec's builder and
// wires its delivery callback. Under the crash–restart lifecycle the
// context carries the node's incarnation number and any checkpoint
// pending a warm restart.
func (c *Cluster) buildRouter(node int) (routing.Router, error) {
	ctx := BuildContext{
		Node:      node,
		Transport: routing.NewSimNode(c.net, node),
		Clock:     routing.SimClock{Sched: c.sched},
		Spec:      &c.spec,
		Carrier:   carrierSensor{net: c.net, node: node},
	}
	if c.spec.Tunables.Lifecycle {
		ctx.Incarnation = c.incarnation[node]
		ctx.Restore = c.checkpoints[node]
	}
	r, err := c.builder(ctx)
	if err != nil {
		return nil, fmt.Errorf("runtime: building %s router for node %d: %v", c.spec.Protocol, node, err)
	}
	r.SetDeliverFunc(func(src int, data []byte) {
		at := c.sched.Now().Duration()
		k := pair{from: src, to: node}
		c.deliveries[k] = append(c.deliveries[k], at)
		if c.spec.OnDeliver != nil {
			c.spec.OnDeliver(at, src, node, data)
		}
	})
	return r, nil
}

// Spec returns the normalized spec the cluster was built from.
func (c *Cluster) Spec() ClusterSpec { return c.spec }

// Scheduler exposes the simulation scheduler.
func (c *Cluster) Scheduler() *simtime.Scheduler { return c.sched }

// Network exposes the dual-rail network (fault injection,
// utilization). It returns nil when the spec selected a switched
// fabric topology — use Net, which serves every shape.
func (c *Cluster) Network() *netsim.Network {
	n, _ := c.net.(*netsim.Network)
	return n
}

// Net exposes the simulated network regardless of topology.
func (c *Cluster) Net() netsim.Net { return c.net }

// Clock returns the simulation clock routers were built with.
func (c *Cluster) Clock() routing.Clock { return routing.SimClock{Sched: c.sched} }

// TraceLog returns the protocol event log (the spec's sink, or the
// private log Build created).
func (c *Cluster) TraceLog() *trace.Log { return c.log }

// Router returns node's router.
func (c *Cluster) Router(node int) routing.Router { return c.routers[node] }

// Daemon returns node's DRS daemon when the spec's protocol is the
// DRS (or any protocol whose router is a *core.Daemon).
func (c *Cluster) Daemon(node int) (*core.Daemon, bool) {
	d, ok := c.routers[node].(*core.Daemon)
	return d, ok
}

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.sched.Now().Duration() }

// Start starts every router in node order. It must be called exactly
// once, before any simulated time elapses under flows or faults.
func (c *Cluster) Start() error {
	if c.started {
		return fmt.Errorf("runtime: cluster started twice")
	}
	c.started = true
	for _, r := range c.routers {
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// ScheduleFlows installs the spec's application flows, in spec order.
func (c *Cluster) ScheduleFlows() {
	if c.flowsScheduled {
		return
	}
	c.flowsScheduled = true
	for i := range c.spec.Flows {
		i := i
		f := c.spec.Flows[i]
		payload := f.Payload
		if payload == nil {
			payload = defaultPayload
		}
		start := f.Interval
		switch {
		case f.Start > 0:
			start = f.Start
		case f.Start == StartImmediately:
			start = 0
		}
		var tick func()
		tick = func() {
			if f.Stop > 0 && c.sched.Now().Duration() >= f.Stop {
				return
			}
			// A router legitimately returns ErrNoRoute during warm-up
			// and outages; the message is simply lost, exactly as an
			// application datagram would be. The application still
			// tried, so the send counts either way.
			_ = c.routers[f.From].SendData(f.To, payload)
			c.sent[i]++
			c.sched.After(f.Interval, tick)
		}
		c.sched.After(start, tick)
	}
}

// ScheduleFaults installs the spec's component failure/repair script,
// in spec order.
func (c *Cluster) ScheduleFaults() {
	if c.faultsScheduled {
		return
	}
	c.faultsScheduled = true
	for _, f := range c.spec.Faults {
		f := f
		c.sched.At(simtime.Time(f.At), func() {
			if f.Restore {
				c.net.Restore(f.Comp)
			} else {
				c.net.Fail(f.Comp)
			}
		})
	}
}

// ScheduleImpairments installs the spec's gray-failure script, in
// spec order (the spec was validated at Build time).
func (c *Cluster) ScheduleImpairments() error {
	if c.impairsScheduled {
		return nil
	}
	c.impairsScheduled = true
	if len(c.spec.Impairments) == 0 {
		return nil
	}
	inj, err := chaos.NewInjector(c.net, c.spec.Impairments)
	if err != nil {
		return err
	}
	inj.Schedule()
	return nil
}

// ScheduleCrashes installs the spec's daemon crash–restart script, in
// spec order (validated at Build time). The cluster itself implements
// chaos.Lifecycle.
func (c *Cluster) ScheduleCrashes() {
	if c.crashesScheduled {
		return
	}
	c.crashesScheduled = true
	if len(c.spec.Crashes) == 0 {
		return
	}
	chaos.ScheduleCrashes(c.sched, c.spec.Crashes, c)
}

// SchedulePartitions installs the spec's network-partition script, in
// spec order (validated at Build time; the spec layer restricts
// partitions to dual-rail clusters, whose Network implements the cut).
func (c *Cluster) SchedulePartitions() {
	if c.partitionsScheduled {
		return
	}
	c.partitionsScheduled = true
	if len(c.spec.Partitions) == 0 {
		return
	}
	chaos.SchedulePartitions(c.sched, c.spec.Partitions, c.Network())
}

// Crash fail-stops node's routing process: the daemon is stopped and
// the network blackholes every frame the node sends or would receive,
// while its NICs stay electrically up. When warm, a checkpoint is
// taken first for the next incarnation to restore. Crash implements
// chaos.Lifecycle.
func (c *Cluster) Crash(node int, warm bool) {
	if node < 0 || node >= len(c.routers) || c.stopped || !c.spec.Tunables.Lifecycle {
		return
	}
	if d, ok := c.Daemon(node); ok {
		if warm {
			c.checkpoints[node] = d.Checkpoint()
		}
		// The restart replaces the router; bank the dead incarnation's
		// repair records so Finish still reports them.
		c.pastRepairs[node] = append(c.pastRepairs[node], daemonRepairs(node, d)...)
	}
	// Bank the dead incarnation's counters too: Result.Counters must
	// cover the node's whole lifetime, not just its last life.
	c.pastCounters[node] = mergeCounters(c.pastCounters[node], c.routers[node].Metrics().Snapshot())
	c.banked[node] = true
	c.routers[node].Stop()
	c.net.FailNode(node)
	detail := "cold"
	if warm {
		detail = "warm checkpoint taken"
	}
	c.log.Append(trace.Event{
		At: c.Now(), Node: node, Kind: trace.KindNodeCrashed,
		Peer: -1, Rail: -1, Detail: detail,
	})
}

// Restart boots node's next incarnation: the network resumes carrying
// its frames, the incarnation number advances, and a fresh router is
// built — restoring the crash-time checkpoint when the episode was
// warm — and started. Restart implements chaos.Lifecycle; build or
// start failures surface as Run's error.
func (c *Cluster) Restart(node int) {
	if node < 0 || node >= len(c.routers) || c.stopped || !c.spec.Tunables.Lifecycle {
		return
	}
	c.net.RestoreNode(node)
	c.incarnation[node]++
	warm := c.checkpoints[node] != nil
	detail := "cold start"
	if warm {
		detail = "warm start"
	}
	// Logged before the build so a warm restore's route-installed
	// events land after the restart marker in trace order.
	c.log.Append(trace.Event{
		At: c.Now(), Node: node, Kind: trace.KindNodeRestarted,
		Peer: -1, Rail: -1, Detail: detail,
	})
	r, err := c.buildRouter(node)
	c.checkpoints[node] = nil
	if err != nil {
		if c.lifecycleErr == nil {
			c.lifecycleErr = fmt.Errorf("runtime: restarting node %d: %v", node, err)
		}
		return
	}
	c.routers[node] = r
	c.banked[node] = false
	if err := r.Start(); err != nil && c.lifecycleErr == nil {
		c.lifecycleErr = fmt.Errorf("runtime: restarting node %d: %v", node, err)
	}
}

// LifecycleErr reports the first crash–restart failure of the run, if
// any (Run surfaces it; Build-and-drive callers check it themselves).
func (c *Cluster) LifecycleErr() error { return c.lifecycleErr }

// RunUntil advances the simulation to absolute time t.
func (c *Cluster) RunUntil(t time.Duration) {
	c.sched.RunUntil(simtime.Time(t))
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d time.Duration) {
	c.sched.RunUntil(c.sched.Now().Add(d))
}

// StopRouters halts every router. The cluster can still be inspected
// but no longer routes.
func (c *Cluster) StopRouters() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, r := range c.routers {
		r.Stop()
	}
}

// FlowResult is one flow's delivery accounting.
type FlowResult struct {
	Flow Flow
	// Sent counts send attempts (including ones the router refused).
	Sent int
	// Delivered counts messages delivered for the flow's (from, to)
	// pair. Flows sharing a pair share the count.
	Delivered int
	// Deliveries are the delivery timestamps for the flow's pair.
	Deliveries []time.Duration
}

// Repair records one completed DRS route repair.
type Repair struct {
	Node, Peer int
	// LostAt and RepairedAt bound the repair.
	LostAt, RepairedAt time.Duration
	// Kind, Rail and Via describe the replacement route.
	Kind      string
	Rail, Via int
}

// Latency returns the repair duration.
func (r Repair) Latency() time.Duration { return r.RepairedAt - r.LostAt }

// Result is the outcome of one spec run.
type Result struct {
	Spec ClusterSpec
	// Flows reports per-flow accounting, in spec order.
	Flows []FlowResult
	// Repairs lists every completed DRS route repair, in node order
	// (empty for protocols without repair accounting).
	Repairs []Repair
	// Counters holds each node's protocol counter totals, indexed by
	// node. Under the crash–restart lifecycle the totals span every
	// incarnation (dead lives are banked at crash time), so per-node
	// control-traffic accounting — the overload campaign's core
	// metric — survives restarts.
	Counters []map[string]int64
	// Utilization is the fraction of each rail's capacity consumed.
	Utilization []float64
	// Trace is the protocol event log of the run.
	Trace *trace.Log
	// Invariant is the forwarding-invariant verdict, present when the
	// spec enabled the checker.
	Invariant *invariant.Report
}

// daemonRepairs converts a daemon's repair records into the runtime's
// Repair form.
func daemonRepairs(node int, d *core.Daemon) []Repair {
	reps := d.Repairs()
	out := make([]Repair, 0, len(reps))
	for _, rep := range reps {
		out = append(out, Repair{
			Node:       node,
			Peer:       rep.Peer,
			LostAt:     rep.LostAt,
			RepairedAt: rep.RepairedAt,
			Kind:       rep.Route.Kind.String(),
			Rail:       rep.Route.Rail,
			Via:        rep.Route.Via,
		})
	}
	return out
}

// mergeCounters adds src's counts into dst (allocating dst when nil)
// and returns it.
func mergeCounters(dst, src map[string]int64) map[string]int64 {
	if dst == nil {
		dst = make(map[string]int64, len(src))
	}
	for name, v := range src {
		dst[name] += v
	}
	return dst
}

// cloneCounters copies a counter map (nil stays nil).
func cloneCounters(src map[string]int64) map[string]int64 {
	if src == nil {
		return nil
	}
	dst := make(map[string]int64, len(src))
	for name, v := range src {
		dst[name] = v
	}
	return dst
}

// DeliveriesFor returns the delivery timestamps recorded for the
// (from, to) pair.
func (c *Cluster) DeliveriesFor(from, to int) []time.Duration {
	return append([]time.Duration(nil), c.deliveries[pair{from, to}]...)
}

// Finish collects the run's outcome. Call after the simulation has
// been advanced (and, normally, after StopRouters).
func (c *Cluster) Finish() *Result {
	res := &Result{Spec: c.spec, Trace: c.log}
	if c.checker != nil {
		res.Invariant = c.checker.Finalize(c.Now())
	}
	totalSent, totalDelivered := 0, 0
	for i, f := range c.spec.Flows {
		del := c.deliveries[pair{f.From, f.To}]
		res.Flows = append(res.Flows, FlowResult{
			Flow:       f,
			Sent:       c.sent[i],
			Delivered:  len(del),
			Deliveries: append([]time.Duration(nil), del...),
		})
		totalSent += c.sent[i]
		totalDelivered += len(del)
	}
	res.Counters = make([]map[string]int64, len(c.routers))
	for node := range c.routers {
		if c.pastRepairs != nil {
			res.Repairs = append(res.Repairs, c.pastRepairs[node]...)
		}
		var past map[string]int64
		if c.pastCounters != nil {
			past = c.pastCounters[node]
		}
		res.Counters[node] = cloneCounters(past)
		if c.banked != nil && c.banked[node] {
			// The node died without a restart: its records were banked
			// at crash time, and reading the dead router again would
			// double-count them.
			if res.Counters[node] == nil {
				res.Counters[node] = map[string]int64{}
			}
			continue
		}
		res.Counters[node] = mergeCounters(res.Counters[node], c.routers[node].Metrics().Snapshot())
		d, ok := c.Daemon(node)
		if !ok {
			continue
		}
		res.Repairs = append(res.Repairs, daemonRepairs(node, d)...)
	}
	for rail := 0; rail < c.spec.Rails; rail++ {
		res.Utilization = append(res.Utilization, c.net.Utilization(rail))
	}
	if m := c.spec.Metrics; m != nil {
		m.Gauge("run.sent").Set(int64(totalSent))
		m.Gauge("run.delivered").Set(int64(totalDelivered))
		m.Gauge("run.repairs").Set(int64(len(res.Repairs)))
		m.Counter("run.completed").Inc()
	}
	return res
}

// Run executes one spec end to end: Build, Start, flows, faults,
// advance to the spec's Duration, stop, collect. The event-scheduling
// order is fixed, so a spec always produces the same Result.
func Run(spec ClusterSpec) (*Result, error) {
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("runtime: spec duration must be positive")
	}
	c, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	c.ScheduleFlows()
	c.ScheduleFaults()
	if err := c.ScheduleImpairments(); err != nil {
		return nil, err
	}
	c.ScheduleCrashes()
	c.SchedulePartitions()
	c.RunUntil(spec.Duration)
	c.StopRouters()
	if err := c.LifecycleErr(); err != nil {
		return nil, err
	}
	return c.Finish(), nil
}

// RunMany executes every spec, sharded over the parallel sweep engine
// (workers goroutines; 0 = GOMAXPROCS). Each spec runs in its own
// private simulator and its Result lands in its own slot, so the
// output is bit-identical for every worker count. A nil ctx means
// context.Background().
func RunMany(ctx context.Context, specs []ClusterSpec, workers int) ([]*Result, error) {
	start := time.Now()
	results, err := parallel.Map(ctx, workers, len(specs), func(i int) (*Result, error) {
		return Run(specs[i])
	})
	if err != nil {
		return nil, err
	}
	Metrics.Gauge("runmany.wall_ns").Set(int64(time.Since(start)))
	Metrics.Gauge("runmany.workers").Set(int64(parallel.Workers(workers, len(specs))))
	Metrics.Counter("runmany.runs").Inc()
	return results, nil
}
