package runtime

import (
	"context"
	"testing"
	"time"

	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// testSpec is a small, fast DRS cluster with one flow and a NIC
// failure halfway through.
func testSpec() ClusterSpec {
	cl := topology.Dual(5)
	return ClusterSpec{
		Nodes:    5,
		Protocol: ProtoDRS,
		Seed:     1,
		Duration: 12 * time.Second,
		Tunables: Tunables{ProbeInterval: 500 * time.Millisecond, MissThreshold: 2},
		Flows:    []Flow{{From: 0, To: 1, Interval: 100 * time.Millisecond}},
		Faults:   []Fault{{At: 5 * time.Second, Comp: cl.NIC(1, 0)}},
	}
}

func TestRunDeliversAcrossFailure(t *testing.T) {
	run, err := Run(testSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	flow := run.Flows[0]
	if flow.Sent == 0 || flow.Delivered == 0 {
		t.Fatalf("flow sent=%d delivered=%d, want both positive", flow.Sent, flow.Delivered)
	}
	// The DRS must keep delivering after the failure.
	recovered := false
	for _, at := range flow.Deliveries {
		if at >= 5*time.Second {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("no delivery after the NIC failure")
	}
	if len(run.Repairs) == 0 {
		t.Fatalf("DRS recorded no route repairs across a NIC failure")
	}
	if run.Trace == nil || run.Trace.Count(trace.KindLinkDown) == 0 {
		t.Fatalf("trace recorded no link-down events")
	}
	if len(run.Utilization) != 2 || run.Utilization[0] <= 0 {
		t.Fatalf("utilization %v, want two positive rails", run.Utilization)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(testSpec())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Flows[0].Sent != b.Flows[0].Sent || a.Flows[0].Delivered != b.Flows[0].Delivered {
		t.Fatalf("runs differ: %+v vs %+v", a.Flows[0], b.Flows[0])
	}
	if len(a.Repairs) != len(b.Repairs) {
		t.Fatalf("repair counts differ: %d vs %d", len(a.Repairs), len(b.Repairs))
	}
	for i := range a.Flows[0].Deliveries {
		if a.Flows[0].Deliveries[i] != b.Flows[0].Deliveries[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a.Flows[0].Deliveries[i], b.Flows[0].Deliveries[i])
		}
	}
}

func TestFlowStartAndStopSemantics(t *testing.T) {
	spec := testSpec()
	spec.Faults = nil
	spec.Duration = 2 * time.Second
	// First message at t = 0, none at or after 1 s: 10 messages.
	spec.Flows = []Flow{{From: 0, To: 1, Interval: 100 * time.Millisecond,
		Start: StartImmediately, Stop: time.Second}}
	run, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Flows[0].Sent != 10 {
		t.Fatalf("sent %d messages, want 10 (t = 0, 100ms, ..., 900ms)", run.Flows[0].Sent)
	}

	// Default start: one warm-up interval, so first message at 100 ms.
	spec.Flows = []Flow{{From: 0, To: 1, Interval: 100 * time.Millisecond, Stop: time.Second}}
	run, err = Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if run.Flows[0].Sent != 9 {
		t.Fatalf("sent %d messages, want 9 (t = 100ms, ..., 900ms)", run.Flows[0].Sent)
	}
}

func TestOnDeliverObservesEveryDelivery(t *testing.T) {
	spec := testSpec()
	var seen int
	spec.OnDeliver = func(at time.Duration, src, dst int, data []byte) {
		if src != 0 || dst != 1 {
			t.Errorf("unexpected delivery %d → %d", src, dst)
		}
		if string(data) != "flow" {
			t.Errorf("unexpected payload %q", data)
		}
		seen++
	}
	run, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seen != run.Flows[0].Delivered {
		t.Fatalf("OnDeliver saw %d deliveries, result says %d", seen, run.Flows[0].Delivered)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := map[string]func(*ClusterSpec){
		"too few nodes":   func(s *ClusterSpec) { s.Nodes = 1 },
		"bad protocol":    func(s *ClusterSpec) { s.Protocol = "ospf" },
		"bad loss rate":   func(s *ClusterSpec) { s.LossRate = 1.5 },
		"bad static rail": func(s *ClusterSpec) { s.Tunables.StaticRail = 7 },
		"flow self-loop":  func(s *ClusterSpec) { s.Flows[0].To = s.Flows[0].From },
		"flow interval":   func(s *ClusterSpec) { s.Flows[0].Interval = 0 },
		"flow start":      func(s *ClusterSpec) { s.Flows[0].Start = -2 },
		"fault time":      func(s *ClusterSpec) { s.Faults[0].At = -time.Second },
		"fault component": func(s *ClusterSpec) { s.Faults[0].Comp = topology.Component(999) },
	}
	for name, mutate := range cases {
		spec := testSpec()
		mutate(&spec)
		if _, err := Run(spec); err == nil {
			t.Errorf("%s: Run accepted an invalid spec", name)
		}
	}
	if _, err := Run(ClusterSpec{Nodes: 3, Flows: []Flow{{From: 0, To: 1, Interval: time.Second}}}); err == nil {
		t.Errorf("Run accepted a spec without a duration")
	}
}

func TestStartTwiceErrors(t *testing.T) {
	c, err := Build(testSpec())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Start(); err == nil {
		t.Fatalf("second Start succeeded")
	}
	c.StopRouters()
}

// TestStubProtocolPluggable is the registry's reason to exist: a brand
// new protocol participates in the runtime without any change to the
// experiment harnesses or commands.
func TestStubProtocolPluggable(t *testing.T) {
	const name = "zstub"
	Register(name, stubBuilder)
	defer Deregister(name)

	spec := testSpec()
	spec.Protocol = name
	spec.Faults = nil
	run, err := Run(spec)
	if err != nil {
		t.Fatalf("Run with stub protocol: %v", err)
	}
	if run.Flows[0].Delivered == 0 {
		t.Fatalf("stub protocol delivered nothing on a healthy cluster")
	}
	if len(run.Repairs) != 0 {
		t.Fatalf("stub protocol reported %d DRS repairs", len(run.Repairs))
	}
}

func TestRunManyIdenticalForEveryWorkerCount(t *testing.T) {
	specs := make([]ClusterSpec, 6)
	for i := range specs {
		specs[i] = testSpec()
		specs[i].Seed = uint64(i + 1)
	}
	base, err := RunMany(context.Background(), specs, 1)
	if err != nil {
		t.Fatalf("RunMany(workers=1): %v", err)
	}
	for _, workers := range []int{0, 2, 5} {
		got, err := RunMany(context.Background(), specs, workers)
		if err != nil {
			t.Fatalf("RunMany(workers=%d): %v", workers, err)
		}
		for i := range specs {
			bf, gf := base[i].Flows[0], got[i].Flows[0]
			if bf.Sent != gf.Sent || bf.Delivered != gf.Delivered {
				t.Fatalf("workers=%d spec %d: flow %+v, want %+v", workers, i, gf, bf)
			}
			if len(base[i].Repairs) != len(got[i].Repairs) {
				t.Fatalf("workers=%d spec %d: %d repairs, want %d",
					workers, i, len(got[i].Repairs), len(base[i].Repairs))
			}
			for j := range bf.Deliveries {
				if bf.Deliveries[j] != gf.Deliveries[j] {
					t.Fatalf("workers=%d spec %d delivery %d: %v, want %v",
						workers, i, j, gf.Deliveries[j], bf.Deliveries[j])
				}
			}
		}
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	bad := testSpec()
	bad.Protocol = "ospf"
	if _, err := RunMany(context.Background(), []ClusterSpec{testSpec(), bad}, 2); err == nil {
		t.Fatalf("RunMany swallowed a spec error")
	}
}
