package runtime

import (
	"fmt"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/invariant"
	"drsnet/internal/linkmon"
	"drsnet/internal/metrics"
	"drsnet/internal/overload"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// Tunables carries every protocol knob a spec can set. Each protocol
// reads the fields it understands and ignores the rest, so one struct
// serves the whole registry.
type Tunables struct {
	// ProbeInterval is the DRS link-check period (default 1 s).
	ProbeInterval time.Duration
	// MissThreshold is the DRS consecutive-miss count that declares a
	// link down (default 2).
	MissThreshold int
	// StaggerProbes spreads DRS link checks across the probe interval.
	StaggerProbes bool
	// PreferLowLatency steers DRS routes toward the lower-RTT rail.
	PreferLowLatency bool
	// StrictLinkEvidence makes DRS count only round-trip probe
	// confirmations as link-liveness evidence, so asymmetric cuts
	// (peer heard, peer deaf to us) are detected instead of masked.
	// Off by default — the optimistic behavior matches the deployed
	// DRS and the seeded goldens.
	StrictLinkEvidence bool
	// AdvertiseInterval is the reactive advertisement period and the
	// link-state hello period (default 1 s).
	AdvertiseInterval time.Duration
	// RouteTimeout is the reactive route expiry (default 6× the
	// advertisement interval).
	RouteTimeout time.Duration
	// StaticRail pins static routing to one rail (default 0).
	StaticRail int
	// FlapDamping enables RFC 2439-style route-flap damping in the DRS
	// (ignored by the baselines). The zero value disables damping; see
	// linkmon.Damping for the threshold semantics and
	// linkmon.DefaultDamping for sane defaults.
	FlapDamping linkmon.Damping
	// AdaptiveRTO enables Jacobson/Karels adaptive probe deadlines in
	// the DRS: per-probe timers at srtt + 4·rttvar with exponential
	// backoff, instead of once-per-round miss accounting. The zero
	// value keeps the classic fixed deadline (and the seeded goldens
	// byte-identical); see linkmon.DefaultRTO for stock settings.
	AdaptiveRTO linkmon.RTO
	// Overload enables the DRS control-plane overload-protection layer
	// (ignored by the baselines): token-bucket budgets on probe
	// retransmits and discovery broadcasts, jittered RTO deadlines,
	// hello storm suppression and the degraded-mode governor that pins
	// last-known-good routes when budgets saturate. The zero value
	// disables the layer (and keeps seeded goldens byte-identical); see
	// overload.Default for stock settings.
	Overload overload.Config
	// FailoverTTL stamps the static fast-failover variants' ProtoData
	// frames (rotor and arborescence; default 6). Defence in depth
	// only — the variants' loop-freedom does not rest on it.
	FailoverTTL int
	// Lifecycle enables the crash–restart lifecycle: DRS daemons get
	// monotonically increasing incarnation numbers, open with a rejoin
	// broadcast, stamp their hellos and offers, and reject control
	// frames from peers' previous lives. Set automatically when the
	// spec carries Crashes; settable on its own for protocol studies.
	Lifecycle bool
}

// TopologySpec selects the simulated network shape. The zero value
// (empty Kind) is the classic dual-rail cluster — Nodes hosts on Rails
// shared segments. "fatTree" and "bcube" run the same protocols over a
// multi-hop switched fabric instead; their Nodes and Rails are derived
// from the fabric shape, so a spec naming a fabric kind leaves Nodes
// and Rails zero (or set to exactly the derived values).
type TopologySpec struct {
	// Kind is "" or "dualRail" (the paper's cluster), "fatTree", or
	// "bcube".
	Kind string
	// K is the fat-tree arity (even, ≥ 2). Fat-tree only.
	K int
	// N is the BCube switch radix (≥ 2). BCube only.
	N int
	// Level is the BCube level k: hosts get Level+1 ports. BCube only.
	Level int
}

// dualRail reports whether the spec selects the classic cluster shape.
func (t TopologySpec) dualRail() bool { return t.Kind == "" || t.Kind == "dualRail" }

// build constructs the switched fabric the spec names (never called
// for dual-rail kinds).
func (t TopologySpec) build() (*topology.Fabric, error) {
	switch t.Kind {
	case "fatTree":
		return topology.FatTree(t.K)
	case "bcube":
		return topology.BCube(t.N, t.Level)
	default:
		return nil, fmt.Errorf("unknown topology kind %q (want dualRail, fatTree or bcube)", t.Kind)
	}
}

// StartImmediately, as a Flow.Start value, fires the flow's first
// message at time zero (a Start of zero means the default one-interval
// warm-up, matching the scenario loader's semantics).
const StartImmediately = -1

// Flow is one periodic application flow: From sends Payload to To
// every Interval. Message loss is the application's problem, exactly
// as on real hardware — the runtime only counts.
type Flow struct {
	From, To int
	Interval time.Duration
	// Start delays the first message. Zero means one Interval;
	// StartImmediately means time zero.
	Start time.Duration
	// Stop, when positive, is the first instant at which no further
	// messages are sent; zero means the flow runs to the horizon.
	Stop time.Duration
	// Payload is the datagram body (default "flow"). Its length feeds
	// the simulator's serialization model, so it is part of the spec.
	Payload []byte
}

// Fault is one scripted component state change.
type Fault struct {
	At time.Duration
	// Comp identifies the NIC or back plane (topology numbering for
	// the spec's cluster shape).
	Comp topology.Component
	// Restore brings the component back instead of failing it.
	Restore bool
}

// ClusterSpec is the declarative description of one simulated cluster
// run: shape, protocol, tunables, traffic, fault schedule and sinks.
// The zero value of every optional field means its documented default.
type ClusterSpec struct {
	// Nodes is the cluster size.
	Nodes int
	// Rails is the number of independent networks (default 2, the
	// paper's dual-rail configuration).
	Rails int
	// Topology selects the network shape (default dual-rail). Fabric
	// kinds ("fatTree", "bcube") derive Nodes and Rails from the shape
	// and are incompatible with Switched, which is the dual-rail
	// per-segment switching ablation.
	Topology TopologySpec
	// Protocol names a registered routing protocol (default "drs").
	Protocol string
	// Switched replaces the shared hubs with switched fabrics.
	Switched bool
	// LossRate injects random frame loss.
	LossRate float64
	// Seed drives the simulation's stochastic pieces.
	Seed uint64
	// Duration is the simulated horizon of Run (unused by Build-only
	// callers that drive the scheduler themselves).
	Duration time.Duration
	// Tunables are the protocol knobs.
	Tunables Tunables
	// Flows is the application traffic matrix.
	Flows []Flow
	// Faults is the component failure/repair script.
	Faults []Fault
	// Impairments is the gray-failure script: timed impairment
	// episodes, unidirectional kills and link flapping (see
	// internal/chaos). Empty means no impairments — the fail-stop
	// world of the paper's experiments.
	Impairments []chaos.Spec
	// Crashes is the daemon crash–restart script (see chaos.CrashSpec):
	// the node's process fail-stops at a scripted instant — NICs stay
	// electrically up, frames blackhole — and optionally restarts cold
	// or warm. A non-empty script implies Tunables.Lifecycle.
	Crashes []chaos.CrashSpec
	// Partitions is the network-partition script (see
	// chaos.PartitionSpec): timed symmetric or asymmetric cuts between
	// node pairs, per rail or across all rails, invisible to carrier
	// sensing. Dual-rail clusters only.
	Partitions []chaos.PartitionSpec
	// Invariant, if non-nil, runs the whole simulation under the
	// forwarding-trace invariant checker (loop-freedom, delivery or
	// provable disconnection, bounded stretch; see internal/invariant).
	// The checker observes every frame through the network tap and its
	// Report lands on the Result; it draws no randomness, so enabling
	// it never changes a seeded run's outcome. A nil Reachable in the
	// config is defaulted to the network's ground-truth oracle.
	Invariant *invariant.Config
	// Trace, if non-nil, receives every protocol event of the run;
	// nil means a private log, exposed on the Result.
	Trace *trace.Log
	// Metrics, if non-nil, receives run telemetry gauges (per-flow
	// sent/delivered, repair count) when the run finishes.
	Metrics *metrics.Set
	// OnDeliver, if non-nil, observes every application delivery in
	// simulation order.
	OnDeliver func(at time.Duration, src, dst int, data []byte)

	// fabric is the resolved switched fabric, set by normalize when
	// Topology names one (nil for dual-rail shapes).
	fabric *topology.Fabric
}

// Fabric returns the spec's resolved switched fabric, or nil for
// dual-rail shapes. Valid after normalize (i.e. on built clusters).
func (s *ClusterSpec) Fabric() *topology.Fabric { return s.fabric }

// normalize applies defaults and validates the spec in place.
func (s *ClusterSpec) normalize() error {
	if !s.Topology.dualRail() {
		if s.Switched {
			return fmt.Errorf("runtime: Switched is a dual-rail ablation; %q fabrics are switched by construction", s.Topology.Kind)
		}
		f, err := s.Topology.build()
		if err != nil {
			return fmt.Errorf("runtime: %v", err)
		}
		if s.Nodes != 0 && s.Nodes != f.Hosts() {
			return fmt.Errorf("runtime: nodes %d conflicts with %s topology (%d hosts); leave Nodes zero",
				s.Nodes, s.Topology.Kind, f.Hosts())
		}
		if s.Rails != 0 && s.Rails != f.Ports() {
			return fmt.Errorf("runtime: rails %d conflicts with %s topology (%d ports); leave Rails zero",
				s.Rails, s.Topology.Kind, f.Ports())
		}
		s.Nodes, s.Rails = f.Hosts(), f.Ports()
		s.fabric = f
	}
	if s.Rails == 0 {
		s.Rails = 2
	}
	cl := topology.Cluster{Nodes: s.Nodes, Rails: s.Rails}
	if s.fabric == nil {
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("runtime: %v", err)
		}
	}
	if s.Protocol == "" {
		s.Protocol = ProtoDRS
	}
	if _, err := Lookup(s.Protocol); err != nil {
		return err
	}
	if s.LossRate < 0 || s.LossRate >= 1 {
		return fmt.Errorf("runtime: loss rate %v outside [0,1)", s.LossRate)
	}
	if s.Tunables.ProbeInterval == 0 {
		s.Tunables.ProbeInterval = time.Second
	}
	if s.Tunables.MissThreshold == 0 {
		s.Tunables.MissThreshold = 2
	}
	if s.Tunables.AdvertiseInterval == 0 {
		s.Tunables.AdvertiseInterval = time.Second
	}
	if s.Tunables.RouteTimeout == 0 {
		s.Tunables.RouteTimeout = 6 * s.Tunables.AdvertiseInterval
	}
	if s.Tunables.ProbeInterval < 0 || s.Tunables.MissThreshold < 0 ||
		s.Tunables.AdvertiseInterval < 0 || s.Tunables.RouteTimeout < 0 {
		return fmt.Errorf("runtime: negative protocol tunable")
	}
	if s.Tunables.StaticRail < 0 || s.Tunables.StaticRail >= s.Rails {
		return fmt.Errorf("runtime: static rail %d out of range [0,%d)", s.Tunables.StaticRail, s.Rails)
	}
	if s.Tunables.FailoverTTL < 0 {
		return fmt.Errorf("runtime: failover TTL %d must be ≥ 0", s.Tunables.FailoverTTL)
	}
	if s.Invariant != nil && s.Invariant.MaxHops < 0 {
		return fmt.Errorf("runtime: invariant max hops %d must be ≥ 0", s.Invariant.MaxHops)
	}
	for i, f := range s.Flows {
		if f.From < 0 || f.From >= s.Nodes || f.To < 0 || f.To >= s.Nodes || f.From == f.To {
			return fmt.Errorf("runtime: flows[%d] endpoints (%d,%d) invalid", i, f.From, f.To)
		}
		if f.Interval <= 0 {
			return fmt.Errorf("runtime: flows[%d] interval must be positive", i)
		}
		if f.Start < StartImmediately {
			return fmt.Errorf("runtime: flows[%d] start must be ≥ 0 (or StartImmediately)", i)
		}
		if f.Stop < 0 {
			return fmt.Errorf("runtime: flows[%d] stop must be ≥ 0", i)
		}
	}
	universe := cl.Components()
	if s.fabric != nil {
		universe = s.fabric.Components()
	}
	for i, f := range s.Faults {
		if f.At < 0 {
			return fmt.Errorf("runtime: faults[%d] at %v before time zero", i, f.At)
		}
		if int(f.Comp) < 0 || int(f.Comp) >= universe {
			return fmt.Errorf("runtime: faults[%d] component %d outside universe %d", i, int(f.Comp), universe)
		}
	}
	if s.fabric != nil {
		if err := chaos.ValidateFabric(s.Impairments, s.fabric); err != nil {
			return fmt.Errorf("runtime: %v", err)
		}
	} else if err := chaos.Validate(s.Impairments, cl); err != nil {
		return fmt.Errorf("runtime: %v", err)
	}
	if err := s.Tunables.AdaptiveRTO.Normalize(); err != nil {
		return fmt.Errorf("runtime: %v", err)
	}
	if err := s.Tunables.Overload.Normalize(); err != nil {
		return fmt.Errorf("runtime: %v", err)
	}
	if err := chaos.ValidateCrashes(s.Crashes, s.Nodes); err != nil {
		return fmt.Errorf("runtime: %v", err)
	}
	if len(s.Partitions) > 0 && s.fabric != nil {
		return fmt.Errorf("runtime: partitions are dual-rail only (fabric %q)", s.Topology.Kind)
	}
	if err := chaos.ValidatePartitions(s.Partitions, s.Nodes, s.Rails); err != nil {
		return fmt.Errorf("runtime: %v", err)
	}
	if len(s.Crashes) > 0 {
		s.Tunables.Lifecycle = true
	}
	return nil
}

// topology returns the spec's cluster shape (after normalize).
func (s *ClusterSpec) topology() topology.Cluster {
	return topology.Cluster{Nodes: s.Nodes, Rails: s.Rails}
}
