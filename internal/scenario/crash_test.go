package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"drsnet/internal/linkmon"
	"drsnet/internal/trace"
)

const crashJSON = `{
  "name": "crash and warm restart",
  "nodes": 4,
  "duration": "30s",
  "adaptiveRTO": true,
  "rtoMin": "40ms",
  "rtoMax": "800ms",
  "traffic": [
    {"from": 0, "to": 1, "interval": "250ms"}
  ],
  "events": [
    {"at": "1s", "kind": "nic", "node": 2, "rail": 0}
  ],
  "crashes": [
    {"node": 1, "at": "10s", "restart": "14s", "warm": true},
    {"node": 1, "at": "22s"}
  ]
}`

// TestCrashScenarioLoadsAndRuns: a crash script in the document loads,
// threads into the runtime spec (lifecycle implied, RTO bounds
// applied) and produces the crash/restart markers when executed.
func TestCrashScenarioLoadsAndRuns(t *testing.T) {
	s, err := Load(strings.NewReader(crashJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Crashes) != 2 {
		t.Fatalf("spec crashes = %+v", spec.Crashes)
	}
	first := spec.Crashes[0]
	if first.Node != 1 || first.At != 10*time.Second || first.RestartAt != 14*time.Second || !first.Warm {
		t.Fatalf("crash[0] = %+v", first)
	}
	if spec.Crashes[1].RestartAt != 0 || spec.Crashes[1].Warm {
		t.Fatalf("crash[1] = %+v", spec.Crashes[1])
	}
	if !spec.Tunables.Lifecycle {
		t.Fatal("crash script did not imply the lifecycle")
	}
	want := linkmon.DefaultRTO()
	want.Min, want.Max = 40*time.Millisecond, 800*time.Millisecond
	if spec.Tunables.AdaptiveRTO != want {
		t.Fatalf("adaptive RTO = %+v, want %+v", spec.Tunables.AdaptiveRTO, want)
	}

	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	crashed, restarted := 0, 0
	for _, e := range rep.Trace.Events() {
		switch e.Kind {
		case trace.KindNodeCrashed:
			crashed++
		case trace.KindNodeRestarted:
			restarted++
		}
	}
	if crashed != 2 || restarted != 1 {
		t.Fatalf("markers = %d crashed, %d restarted, want 2 and 1", crashed, restarted)
	}
}

// TestCrashScenarioValidation: every way a crash script can be
// inconsistent with the document is rejected with a scenario-level
// error.
func TestCrashScenarioValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Nodes:    4,
			Duration: Duration(30 * time.Second),
			Traffic:  []TrafficSpec{{From: 0, To: 1, Interval: Duration(time.Second)}},
		}
	}
	sec := func(n int) Duration { return Duration(time.Duration(n) * time.Second) }
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{"unknown node", func(s *Scenario) {
			s.Crashes = []CrashSpec{{Node: 7, At: sec(5)}}
		}, "node 7 invalid"},
		{"crash after horizon", func(s *Scenario) {
			s.Crashes = []CrashSpec{{Node: 1, At: sec(40)}}
		}, "outside [0,30s]"},
		{"restart before crash", func(s *Scenario) {
			s.Crashes = []CrashSpec{{Node: 1, At: sec(10), Restart: sec(5)}}
		}, "not after crash"},
		{"warm without restart", func(s *Scenario) {
			s.Crashes = []CrashSpec{{Node: 1, At: sec(10), Warm: true}}
		}, "never restarts"},
		{"overlapping episodes", func(s *Scenario) {
			s.Crashes = []CrashSpec{
				{Node: 1, At: sec(5), Restart: sec(20)},
				{Node: 1, At: sec(10), Restart: sec(25)},
			}
		}, "overlaps"},
		{"crash after final death", func(s *Scenario) {
			s.Crashes = []CrashSpec{
				{Node: 1, At: sec(5)},
				{Node: 1, At: sec(10), Restart: sec(15)},
			}
		}, "never restarts it"},
		{"rto bounds without adaptiveRTO", func(s *Scenario) {
			s.RTOMin = Duration(40 * time.Millisecond)
		}, "adaptiveRTO is false"},
		{"rto min above max", func(s *Scenario) {
			s.AdaptiveRTO = true
			s.RTOMin = Duration(2 * time.Second)
			s.RTOMax = Duration(time.Second)
		}, "min"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestCrashScenarioJSONRoundTrip: a scenario with a crash script
// survives marshal → load with the script intact.
func TestCrashScenarioJSONRoundTrip(t *testing.T) {
	s, err := Load(strings.NewReader(crashJSON))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatalf("re-load: %v (doc %s)", err, blob)
	}
	if !reflect.DeepEqual(s.Crashes, back.Crashes) {
		t.Fatalf("crash script changed:\n%+v\n%+v", s.Crashes, back.Crashes)
	}
	if back.AdaptiveRTO != s.AdaptiveRTO || back.RTOMin != s.RTOMin || back.RTOMax != s.RTOMax {
		t.Fatal("RTO knobs changed across the round trip")
	}
}
