package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// validDoc is a minimal well-formed scenario used as a fuzz seed and
// as the template for the malformed-input table below.
const validDoc = `{
  "nodes": 6,
  "duration": "30s",
  "traffic": [{"from": 0, "to": 1, "interval": "100ms"}],
  "events": [
    {"at": "10s", "kind": "nic", "node": 2, "rail": 0},
    {"at": "12s", "kind": "backplane", "rail": 1},
    {"at": "20s", "kind": "nic", "node": 2, "rail": 0, "restore": true}
  ]
}`

// TestLoadRejectsMalformed pins the loader's error behaviour on the
// malformed classes the fuzzer also explores: bad component IDs,
// negative times and duplicate fault events must error, never panic.
func TestLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"node out of range": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "1s", "kind": "nic", "node": 9, "rail": 0}]}`,
		"negative node": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "1s", "kind": "nic", "node": -1, "rail": 0}]}`,
		"bad rail": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "1s", "kind": "nic", "node": 1, "rail": 2}]}`,
		"unknown kind": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "1s", "kind": "router", "node": 1, "rail": 0}]}`,
		"negative event time": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "-1s", "kind": "nic", "node": 1, "rail": 0}]}`,
		"event after horizon": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "11s", "kind": "nic", "node": 1, "rail": 0}]}`,
		"negative traffic start": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s", "start": "-2s"}]}`,
		"duplicate nic fault": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "1s", "kind": "nic", "node": 1, "rail": 0},
			           {"at": "1s", "kind": "nic", "node": 1, "rail": 0}]}`,
		"duplicate backplane fault despite node": `{"nodes": 4, "duration": "10s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
			"events": [{"at": "1s", "kind": "backplane", "node": 0, "rail": 1},
			           {"at": "1s", "kind": "backplane", "node": 3, "rail": 1}]}`,
		"self traffic":   `{"nodes": 4, "duration": "10s", "traffic": [{"from": 1, "to": 1, "interval": "1s"}]}`,
		"unknown field":  `{"nodes": 4, "duration": "10s", "traffic": [{"from": 0, "to": 1, "interval": "1s"}], "bogus": 1}`,
		"truncated":      `{"nodes": 4, "duration": "10s", "traffic": [{"fr`,
		"non-object":     `[1, 2, 3]`,
		"empty document": ``,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Distinct fail and restore of the same component at the same time
	// are not duplicates.
	if _, err := Load(strings.NewReader(validDoc)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

// FuzzLoad is the satellite fuzz target: whatever bytes arrive, Load
// either returns a scenario that re-validates cleanly or an error —
// it must never panic.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(validDoc))
	f.Add([]byte(`{"nodes": 2, "duration": 1000000000, "traffic": [{"from": 0, "to": 1, "interval": 1000000}]}`))
	f.Add([]byte(`{"nodes": -3, "duration": "10s", "traffic": []}`))
	f.Add([]byte(`{"nodes": 4, "duration": "10s",
		"traffic": [{"from": 0, "to": 1, "interval": "1s"}],
		"events": [{"at": "1s", "kind": "nic", "node": 99, "rail": 7},
		           {"at": "-5s", "kind": "backplane", "rail": 0},
		           {"at": "1s", "kind": "nic", "node": 99, "rail": 7}]}`))
	f.Add([]byte(`{"duration": "-10s"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte("\xff\xfe{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the loader accepts must stay self-consistent.
		if err := s.Validate(); err != nil {
			t.Fatalf("Load accepted a scenario Validate rejects: %v", err)
		}
		if s.Nodes < 2 || s.Duration <= 0 {
			t.Fatalf("accepted scenario with nodes=%d duration=%v", s.Nodes, s.Duration)
		}
	})
}
