package scenario

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/netsim"
)

// impairScenario returns a valid scenario with one impairment entry
// for the mutation tests to break.
func impairScenario() *Scenario {
	return &Scenario{
		Nodes:    4,
		Duration: Duration(30 * time.Second),
		Traffic:  []TrafficSpec{{From: 0, To: 1, Interval: Duration(time.Second)}},
		Impairments: []ImpairmentSpec{{
			Start: Duration(5 * time.Second),
			Stop:  Duration(20 * time.Second),
			Kind:  "nic",
			Node:  1,
			Rail:  0,
			Loss:  0.2,
		}},
	}
}

func TestImpairmentValidationErrors(t *testing.T) {
	if err := impairScenario().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		mutate func(*Scenario)
		want   string
	}{
		"bad kind": {func(s *Scenario) { s.Impairments[0].Kind = "router" },
			`kind "router" (want nic or backplane)`},
		"bad node": {func(s *Scenario) { s.Impairments[0].Node = 7 },
			"node 7 invalid"},
		"bad rail": {func(s *Scenario) { s.Impairments[0].Rail = 3 },
			"rail 3 invalid"},
		"loss above one": {func(s *Scenario) { s.Impairments[0].Loss = 1.2 },
			"loss probability 1.2 outside [0,1]"},
		"negative corrupt": {func(s *Scenario) { s.Impairments[0].Corrupt = -0.1 },
			"corrupt probability -0.1 outside [0,1]"},
		"negative delay": {func(s *Scenario) { s.Impairments[0].Delay = Duration(-time.Second) },
			"negative delay"},
		"negative jitter": {func(s *Scenario) { s.Impairments[0].Jitter = Duration(-1) },
			"negative jitter"},
		"start after horizon": {func(s *Scenario) { s.Impairments[0].Start = Duration(time.Minute) },
			"start 1m0s outside [0,30s]"},
		"stop before start": {func(s *Scenario) { s.Impairments[0].Stop = Duration(time.Second) },
			"stop 1s not after start 5s"},
		"bad direction": {func(s *Scenario) { s.Impairments[0].Direction = "sideways" },
			`direction "sideways" (want both, tx or rx)`},
		"duty without period": {func(s *Scenario) { s.Impairments[0].FlapDuty = 0.5 },
			"flap period must be > 0"},
		"negative period": {func(s *Scenario) { s.Impairments[0].FlapPeriod = Duration(-time.Second) },
			"flap period must be > 0"},
		"duty out of range": {func(s *Scenario) {
			s.Impairments[0].FlapPeriod = Duration(time.Second)
			s.Impairments[0].FlapDuty = 1.5
		}, "flap duty 1.5 outside (0,1)"},
		"kill and flap": {func(s *Scenario) {
			s.Impairments[0].Kill = true
			s.Impairments[0].FlapPeriod = Duration(time.Second)
		}, "kill and flapPeriod are mutually exclusive"},
		"does nothing": {func(s *Scenario) { s.Impairments[0].Loss = 0 },
			"does nothing"},
		"damp without flag": {func(s *Scenario) { s.DampSuppress = 3 },
			"flapDamping is false"},
		"damp reuse above suppress": {func(s *Scenario) {
			s.FlapDamping = true
			s.DampSuppress = 1
			s.DampReuse = 2
		}, "reuse"},
	}
	for name, c := range cases {
		s := impairScenario()
		c.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", name, err, c.want)
		}
	}
}

func TestImpairmentSpecConversion(t *testing.T) {
	doc := `{
  "nodes": 4,
  "duration": "30s",
  "flapDamping": true,
  "dampHalfLife": "5s",
  "traffic": [{"from": 0, "to": 1, "interval": "1s"}],
  "impairments": [
    {"start": "2s", "kind": "backplane", "rail": 1, "loss": 0.1, "delay": "3ms"},
    {"start": "5s", "stop": "25s", "kind": "nic", "node": 2, "rail": 0, "kill": true, "direction": "tx"},
    {"start": "5s", "kind": "nic", "node": 3, "rail": 1, "flapPeriod": "4s", "flapDuty": 0.25}
  ]
}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Impairments) != 3 {
		t.Fatalf("impairments = %d", len(spec.Impairments))
	}
	cl := spec.Impairments
	if cl[0].Impair.Loss != 0.1 || cl[0].Impair.Delay != 3*time.Millisecond {
		t.Fatalf("backplane impairment = %+v", cl[0].Impair)
	}
	if !cl[1].Kill || cl[1].Direction != netsim.DirTx || cl[1].Stop != 25*time.Second {
		t.Fatalf("kill spec = %+v", cl[1])
	}
	if cl[2].FlapPeriod != 4*time.Second || cl[2].FlapDuty != 0.25 {
		t.Fatalf("flap spec = %+v", cl[2])
	}
	if !spec.Tunables.FlapDamping.Enabled() {
		t.Fatal("damping not threaded into tunables")
	}
	if spec.Tunables.FlapDamping.HalfLife != 5*time.Second {
		t.Fatalf("damping half-life = %v", spec.Tunables.FlapDamping.HalfLife)
	}
	// The scenario runs end to end on the unified runtime.
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 1 || rep.Flows[0].Sent == 0 {
		t.Fatalf("report = %+v", rep)
	}
}
