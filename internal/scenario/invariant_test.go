package scenario

import (
	"strings"
	"testing"
	"time"
)

// failoverJSON exercises the new schema surface: a static fast-failover
// protocol, its TTL tunable and the invariant harness, with the flow
// stopped ahead of the horizon so the last packet lands before the
// checker finalizes.
const failoverJSON = `{
  "name": "arbor under invariant",
  "nodes": 4,
  "duration": "5s",
  "protocol": "failover-arbor",
  "failoverTTL": 6,
  "invariant": {"requireDelivery": true, "maxHops": 4},
  "traffic": [
    {"from": 0, "to": 3, "interval": "250ms", "stop": "4s"}
  ],
  "events": [
    {"at": "2s", "kind": "nic", "node": 3, "rail": 1}
  ]
}`

func TestLoadFailoverFields(t *testing.T) {
	s, err := Load(strings.NewReader(failoverJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol != "failover-arbor" || s.FailoverTTL != 6 {
		t.Fatalf("scenario = %+v", s)
	}
	if s.Invariant == nil || !s.Invariant.RequireDelivery || s.Invariant.MaxHops != 4 {
		t.Fatalf("invariant spec = %+v", s.Invariant)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Tunables.FailoverTTL != 6 {
		t.Fatalf("tunables = %+v", spec.Tunables)
	}
	if spec.Invariant == nil || !spec.Invariant.RequireDelivery || spec.Invariant.MaxHops != 4 {
		t.Fatalf("invariant config = %+v", spec.Invariant)
	}
}

func TestValidateFailoverFields(t *testing.T) {
	good := func() *Scenario {
		return &Scenario{
			Nodes:    4,
			Duration: Duration(10 * time.Second),
			Traffic:  []TrafficSpec{{From: 0, To: 1, Interval: Duration(time.Second)}},
		}
	}
	s := good()
	s.FailoverTTL = -1
	if err := s.Validate(); err == nil {
		t.Error("negative failoverTTL accepted")
	}
	s = good()
	s.Invariant = &InvariantSpec{MaxHops: -1}
	if err := s.Validate(); err == nil {
		t.Error("negative invariant maxHops accepted")
	}
	s = good()
	s.Invariant = &InvariantSpec{}
	if err := s.Validate(); err != nil {
		t.Errorf("empty invariant block rejected: %v", err)
	}
	s = good()
	s.Traffic[0].Stop = Duration(-1)
	if err := s.Validate(); err == nil {
		t.Error("negative traffic stop accepted")
	}
	s = good()
	s.Traffic[0].Start = Duration(2 * time.Second)
	s.Traffic[0].Stop = Duration(time.Second)
	if err := s.Validate(); err == nil {
		t.Error("traffic stop before start accepted")
	}
}

// TestRunInvariantScenario drives the failover scenario end to end: the
// mid-run NIC failure must be masked (strict delivery holds) and the
// report must carry a clean invariant verdict on its final line.
func TestRunInvariantScenario(t *testing.T) {
	s, err := Load(strings.NewReader(failoverJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invariant == nil {
		t.Fatal("scenario enabled the checker but Report.Invariant is nil")
	}
	if err := rep.Invariant.Err(); err != nil {
		t.Fatal(err)
	}
	f := rep.Flows[0]
	if f.Sent == 0 || f.Delivered != f.Sent {
		t.Fatalf("sent=%d delivered=%d, want lossless failover", f.Sent, f.Delivered)
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "invariant: ok") {
		t.Fatalf("report missing invariant verdict:\n%s", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("report does not end in newline:\n%q", out)
	}
}

// TestReportOmitsInvariantLineByDefault: scenarios that do not enable
// the checker render byte-identically to before it existed — the
// drsim goldens depend on this.
func TestReportOmitsInvariantLineByDefault(t *testing.T) {
	s, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invariant != nil {
		t.Fatalf("checker ran without being asked: %+v", rep.Invariant)
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "invariant") {
		t.Fatalf("report grew an invariant line without the checker:\n%s", sb.String())
	}
}
