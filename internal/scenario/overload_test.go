package scenario

import (
	"strings"
	"testing"
	"time"

	"drsnet/internal/overload"
)

const overloadJSON = `{
  "name": "budgeted storm",
  "nodes": 4,
  "duration": "20s",
  "adaptiveRTO": true,
  "overload": {
    "probeRate": 1.5,
    "probeBurst": 3,
    "helloMinInterval": "4s",
    "degradedSheds": 5,
    "degradedQuiet": "3s"
  },
  "traffic": [
    {"from": 0, "to": 1, "interval": "250ms"}
  ]
}`

func TestOverloadScenarioLoads(t *testing.T) {
	s, err := Load(strings.NewReader(overloadJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	got := spec.Tunables.Overload
	want := overload.Default()
	want.ProbeRate, want.ProbeBurst = 1.5, 3
	want.HelloMinInterval = 4 * time.Second
	want.DegradedSheds = 5
	want.DegradedQuiet = 3 * time.Second
	if got != want {
		t.Fatalf("overload = %+v, want %+v", got, want)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOverloadScenarioAbsentMeansDisabled(t *testing.T) {
	s, err := Load(strings.NewReader(`{
  "name": "plain",
  "nodes": 3,
  "duration": "5s",
  "traffic": [{"from": 0, "to": 1, "interval": "1s"}]
}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Tunables.Overload != (overload.Config{}) {
		t.Fatalf("no overload block but Tunables.Overload = %+v", spec.Tunables.Overload)
	}
}

func TestOverloadScenarioValidation(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"unknown field", `{
  "nodes": 3, "duration": "5s",
  "overload": {"probeRates": 1},
  "traffic": [{"from": 0, "to": 1, "interval": "1s"}]
}`, "probeRates"},
		{"negative rate", `{
  "nodes": 3, "duration": "5s",
  "overload": {"probeRate": -1},
  "traffic": [{"from": 0, "to": 1, "interval": "1s"}]
}`, "negative budget rate"},
		{"jitter above one", `{
  "nodes": 3, "duration": "5s",
  "overload": {"jitterFrac": 1.5},
  "traffic": [{"from": 0, "to": 1, "interval": "1s"}]
}`, "jitter fraction"},
	}
	for _, tc := range cases {
		_, err := Load(strings.NewReader(tc.doc))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
