package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"drsnet/internal/netsim"
)

const partitionJSON = `{
  "name": "asymmetric partition and heal",
  "nodes": 3,
  "duration": "15s",
  "probeInterval": "250ms",
  "missThreshold": 2,
  "strictLinkEvidence": true,
  "traffic": [
    {"from": 0, "to": 1, "interval": "100ms"}
  ],
  "partitions": [
    {"a": 0, "b": 1, "rail": 0, "start": "3s", "stop": "8s", "direction": "tx"},
    {"a": 0, "b": 2, "rail": -1, "start": "5s", "stop": "6s"}
  ]
}`

// TestPartitionScenarioLoadsAndRuns: a partition script loads, threads
// into the runtime spec (rail -1 widened to AllRails, direction
// parsed, strict evidence applied) and the run delivers across the
// heal.
func TestPartitionScenarioLoadsAndRuns(t *testing.T) {
	s, err := Load(strings.NewReader(partitionJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Partitions) != 2 {
		t.Fatalf("spec partitions = %+v", spec.Partitions)
	}
	first := spec.Partitions[0]
	if first.A != 0 || first.B != 1 || first.Rail != 0 ||
		first.Start != 3*time.Second || first.Stop != 8*time.Second ||
		first.Direction != netsim.DirTx {
		t.Fatalf("partition[0] = %+v", first)
	}
	if spec.Partitions[1].Rail != netsim.AllRails || spec.Partitions[1].Direction != netsim.DirBoth {
		t.Fatalf("partition[1] = %+v", spec.Partitions[1])
	}
	if !spec.Tunables.StrictLinkEvidence {
		t.Fatal("strictLinkEvidence did not thread into the tunables")
	}

	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flows[0].Delivered == 0 {
		t.Fatal("partitioned scenario delivered nothing")
	}
	if rep.Repairs == 0 {
		t.Fatal("no route repairs across an asymmetric partition")
	}
}

// TestPartitionScenarioValidation: every way a partition script can be
// inconsistent with the document is rejected with a scenario-level
// error.
func TestPartitionScenarioValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Nodes:    4,
			Duration: Duration(30 * time.Second),
			Traffic:  []TrafficSpec{{From: 0, To: 1, Interval: Duration(time.Second)}},
		}
	}
	sec := func(n int) Duration { return Duration(time.Duration(n) * time.Second) }
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{"unknown node", func(s *Scenario) {
			s.Partitions = []PartitionSpec{{A: 0, B: 9, Start: sec(5)}}
		}, "unknown node 9"},
		{"self partition", func(s *Scenario) {
			s.Partitions = []PartitionSpec{{A: 2, B: 2, Start: sec(5)}}
		}, "partitioned from itself"},
		{"bad rail", func(s *Scenario) {
			s.Partitions = []PartitionSpec{{A: 0, B: 1, Rail: 3, Start: sec(5)}}
		}, "rail 3 outside"},
		{"past horizon", func(s *Scenario) {
			s.Partitions = []PartitionSpec{{A: 0, B: 1, Start: sec(40)}}
		}, "outside [0,30s]"},
		{"stop before start", func(s *Scenario) {
			s.Partitions = []PartitionSpec{{A: 0, B: 1, Start: sec(10), Stop: sec(5)}}
		}, "not after start"},
		{"bad direction", func(s *Scenario) {
			s.Partitions = []PartitionSpec{{A: 0, B: 1, Start: sec(5), Direction: "sideways"}}
		}, `direction "sideways"`},
		{"fabric topology", func(s *Scenario) {
			s.Nodes = 0
			s.Topology = &TopologySpec{Kind: "fatTree", K: 4}
			s.Partitions = []PartitionSpec{{A: 0, B: 1, Start: sec(5)}}
		}, "dual-rail only"},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestPartitionScenarioJSONRoundTrip: a partition script survives
// marshal → load intact.
func TestPartitionScenarioJSONRoundTrip(t *testing.T) {
	s, err := Load(strings.NewReader(partitionJSON))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatalf("re-load: %v (doc %s)", err, blob)
	}
	if !reflect.DeepEqual(s.Partitions, back.Partitions) {
		t.Fatalf("partition script changed:\n%+v\n%+v", s.Partitions, back.Partitions)
	}
	if back.StrictLinkEvidence != s.StrictLinkEvidence {
		t.Fatal("strictLinkEvidence changed across the round trip")
	}
}
