package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleScenariosRoundTrip loads every shipped scenario document
// and executes it through the unified runtime: the files must parse,
// validate, translate into a ClusterSpec and run deterministically.
func TestExampleScenariosRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(paths) == 0 {
		t.Fatalf("no example scenario files found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			load := func() *Scenario {
				f, err := os.Open(path)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer f.Close()
				s, err := Load(f)
				if err != nil {
					t.Fatalf("load: %v", err)
				}
				return s
			}

			s := load()
			spec, err := s.Spec()
			if err != nil {
				t.Fatalf("Spec: %v", err)
			}
			if spec.Nodes != s.Nodes || len(spec.Flows) != len(s.Traffic) || len(spec.Faults) != len(s.Events) {
				t.Fatalf("spec does not mirror the document: %+v", spec)
			}

			rep, err := s.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(rep.Flows) != len(s.Traffic) {
				t.Fatalf("%d flow reports for %d traffic specs", len(rep.Flows), len(s.Traffic))
			}
			for i, f := range rep.Flows {
				if f.Sent == 0 {
					t.Errorf("flow %d (%d → %d) sent nothing", i, f.From, f.To)
				}
				if f.Delivered > f.Sent {
					t.Errorf("flow %d delivered %d of %d", i, f.Delivered, f.Sent)
				}
			}
			if rep.Trace == nil {
				t.Fatalf("report carries no trace log")
			}

			// Deterministic: a second run of a fresh load is identical.
			again, err := load().Run()
			if err != nil {
				t.Fatalf("re-run: %v", err)
			}
			for i := range rep.Flows {
				if rep.Flows[i] != again.Flows[i] {
					t.Errorf("flow %d differs across runs: %+v vs %+v",
						i, rep.Flows[i], again.Flows[i])
				}
			}
			if rep.Repairs != again.Repairs {
				t.Errorf("repairs differ across runs: %d vs %d", rep.Repairs, again.Repairs)
			}
		})
	}
}
