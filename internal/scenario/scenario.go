// Package scenario loads and executes declarative simulation
// scenarios: cluster shape, protocol, application traffic matrix and a
// timed component failure/repair script, all in one JSON document.
// It is the workload-generator front end of cmd/drsim — experiments
// beyond the canned ones can be described in a file and replayed
// deterministically.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"drsnet/internal/core"
	"drsnet/internal/netsim"
	"drsnet/internal/routing"
	"drsnet/internal/simtime"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// Duration is a time.Duration that unmarshals from JSON strings like
// "200ms" or "1m30s" (or from a number of nanoseconds).
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case string:
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", t, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(t))
	default:
		return fmt.Errorf("scenario: duration must be a string or number, have %T", v)
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// TrafficSpec is one periodic application flow.
type TrafficSpec struct {
	From     int      `json:"from"`
	To       int      `json:"to"`
	Interval Duration `json:"interval"`
	// Start delays the flow's first message (default one interval).
	Start Duration `json:"start,omitempty"`
}

// EventSpec is one scripted component state change.
type EventSpec struct {
	At Duration `json:"at"`
	// Kind is "nic" or "backplane".
	Kind string `json:"kind"`
	// Node is required for NICs, ignored for back planes.
	Node int `json:"node,omitempty"`
	Rail int `json:"rail"`
	// Restore brings the component back instead of failing it.
	Restore bool `json:"restore,omitempty"`
}

// Scenario is a complete declarative simulation.
type Scenario struct {
	// Name labels the report.
	Name string `json:"name,omitempty"`
	// Nodes is the cluster size.
	Nodes int `json:"nodes"`
	// Protocol is "drs" (default), "reactive" or "static".
	Protocol string `json:"protocol,omitempty"`
	// Duration is the simulated horizon.
	Duration Duration `json:"duration"`
	// Seed drives stochastic pieces (loss).
	Seed uint64 `json:"seed,omitempty"`
	// Switched selects a switched fabric instead of shared hubs.
	Switched bool `json:"switched,omitempty"`
	// LossRate injects random frame loss.
	LossRate float64 `json:"lossRate,omitempty"`
	// DRS tunables.
	ProbeInterval Duration `json:"probeInterval,omitempty"`
	MissThreshold int      `json:"missThreshold,omitempty"`
	StaggerProbes bool     `json:"staggerProbes,omitempty"`
	// PreferLowLatency enables latency-aware rail steering (DRS only).
	PreferLowLatency bool `json:"preferLowLatency,omitempty"`
	// Reactive tunables.
	AdvertiseInterval Duration `json:"advertiseInterval,omitempty"`
	RouteTimeout      Duration `json:"routeTimeout,omitempty"`
	// Traffic is the application flow matrix.
	Traffic []TrafficSpec `json:"traffic"`
	// Events is the failure/repair script.
	Events []EventSpec `json:"events,omitempty"`
}

// Load parses a scenario document.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate applies defaults and checks consistency.
func (s *Scenario) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("scenario: need ≥ 2 nodes, have %d", s.Nodes)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	switch s.Protocol {
	case "":
		s.Protocol = "drs"
	case "drs", "reactive", "linkstate", "static":
	default:
		return fmt.Errorf("scenario: unknown protocol %q", s.Protocol)
	}
	if s.ProbeInterval == 0 {
		s.ProbeInterval = Duration(time.Second)
	}
	if s.MissThreshold == 0 {
		s.MissThreshold = 2
	}
	if s.AdvertiseInterval == 0 {
		s.AdvertiseInterval = Duration(time.Second)
	}
	if s.RouteTimeout == 0 {
		s.RouteTimeout = 6 * s.AdvertiseInterval
	}
	if s.LossRate < 0 || s.LossRate >= 1 {
		return fmt.Errorf("scenario: loss rate %v outside [0,1)", s.LossRate)
	}
	if len(s.Traffic) == 0 {
		return fmt.Errorf("scenario: no traffic flows")
	}
	for i, t := range s.Traffic {
		if t.From < 0 || t.From >= s.Nodes || t.To < 0 || t.To >= s.Nodes || t.From == t.To {
			return fmt.Errorf("scenario: traffic[%d] endpoints (%d,%d) invalid", i, t.From, t.To)
		}
		if t.Interval <= 0 {
			return fmt.Errorf("scenario: traffic[%d] interval must be positive", i)
		}
		if t.Start < 0 {
			return fmt.Errorf("scenario: traffic[%d] start must be non-negative", i)
		}
	}
	seen := make(map[EventSpec]int, len(s.Events))
	for i, e := range s.Events {
		if e.At < 0 || e.At > s.Duration {
			return fmt.Errorf("scenario: events[%d] at %v outside [0,%v]",
				i, time.Duration(e.At), time.Duration(s.Duration))
		}
		switch e.Kind {
		case "nic":
			if e.Node < 0 || e.Node >= s.Nodes {
				return fmt.Errorf("scenario: events[%d] node %d invalid", i, e.Node)
			}
		case "backplane":
			// Node is ignored for back planes; normalize the dedup key so
			// {"backplane", node:0} and {"backplane", node:3} collide.
			e.Node = 0
		default:
			return fmt.Errorf("scenario: events[%d] kind %q (want nic or backplane)", i, e.Kind)
		}
		if e.Rail < 0 || e.Rail >= 2 {
			return fmt.Errorf("scenario: events[%d] rail %d invalid", i, e.Rail)
		}
		if j, dup := seen[e]; dup {
			return fmt.Errorf("scenario: events[%d] duplicates events[%d] (same time, component and action)", i, j)
		}
		seen[e] = i
	}
	return nil
}

// FlowReport is the outcome of one traffic flow.
type FlowReport struct {
	From, To        int
	Sent, Delivered int
}

// Report is the outcome of a scenario run.
type Report struct {
	Name  string
	Flows []FlowReport
	// Repairs counts route repairs across all DRS daemons (0 for
	// baselines).
	Repairs int
	// Utilization per rail at the end of the run.
	Utilization [2]float64
	// Trace carries the protocol event log.
	Trace *trace.Log
}

// Run executes the scenario deterministically.
func (s *Scenario) Run() (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sched := simtime.NewScheduler()
	params := netsim.DefaultParams()
	params.LossRate = s.LossRate
	params.Switched = s.Switched
	net, err := netsim.New(sched, topology.Dual(s.Nodes), params, s.Seed)
	if err != nil {
		return nil, err
	}
	clock := routing.SimClock{Sched: sched}
	log := trace.NewLog(0)

	routers := make([]routing.Router, s.Nodes)
	var daemons []*core.Daemon
	for node := 0; node < s.Nodes; node++ {
		tr := routing.NewSimNode(net, node)
		switch s.Protocol {
		case "drs":
			cfg := core.DefaultConfig()
			cfg.ProbeInterval = time.Duration(s.ProbeInterval)
			cfg.MissThreshold = s.MissThreshold
			cfg.StaggerProbes = s.StaggerProbes
			cfg.PreferLowLatency = s.PreferLowLatency
			cfg.Trace = log
			d, err := core.New(tr, clock, cfg)
			if err != nil {
				return nil, err
			}
			daemons = append(daemons, d)
			routers[node] = d
		case "reactive":
			cfg := routing.DefaultReactiveConfig()
			cfg.AdvertiseInterval = time.Duration(s.AdvertiseInterval)
			cfg.RouteTimeout = time.Duration(s.RouteTimeout)
			cfg.Trace = log
			r, err := routing.NewReactive(tr, clock, cfg)
			if err != nil {
				return nil, err
			}
			routers[node] = r
		case "linkstate":
			cfg := routing.DefaultLinkStateConfig()
			cfg.HelloInterval = time.Duration(s.AdvertiseInterval)
			cfg.Trace = log
			l, err := routing.NewLinkState(tr, clock, cfg)
			if err != nil {
				return nil, err
			}
			routers[node] = l
		case "static":
			st, err := routing.NewStatic(tr, 0)
			if err != nil {
				return nil, err
			}
			routers[node] = st
		}
	}

	// Delivery accounting: one counter per (from, to) flow.
	type flowKey struct{ from, to int }
	delivered := make(map[flowKey]int)
	for node := 0; node < s.Nodes; node++ {
		node := node
		routers[node].SetDeliverFunc(func(src int, data []byte) {
			delivered[flowKey{from: src, to: node}]++
		})
	}
	for _, r := range routers {
		if err := r.Start(); err != nil {
			return nil, err
		}
	}

	sent := make([]int, len(s.Traffic))
	for i, t := range s.Traffic {
		i, t := i, t
		interval := time.Duration(t.Interval)
		start := time.Duration(t.Start)
		if start == 0 {
			start = interval
		}
		var tick func()
		tick = func() {
			_ = routers[t.From].SendData(t.To, []byte("flow"))
			sent[i]++
			sched.After(interval, tick)
		}
		sched.After(start, tick)
	}

	for _, e := range s.Events {
		e := e
		var comp topology.Component
		cl := net.Cluster()
		if e.Kind == "nic" {
			comp = cl.NIC(e.Node, e.Rail)
		} else {
			comp = cl.Backplane(e.Rail)
		}
		sched.At(simtime.Time(e.At), func() {
			if e.Restore {
				net.Restore(comp)
			} else {
				net.Fail(comp)
			}
		})
	}

	sched.RunUntil(simtime.Time(s.Duration))
	for _, r := range routers {
		r.Stop()
	}

	rep := &Report{Name: s.Name, Trace: log}
	for i, t := range s.Traffic {
		rep.Flows = append(rep.Flows, FlowReport{
			From: t.From, To: t.To,
			Sent:      sent[i],
			Delivered: delivered[flowKey{from: t.From, to: t.To}],
		})
	}
	for _, d := range daemons {
		rep.Repairs += len(d.Repairs())
	}
	for rail := 0; rail < 2; rail++ {
		rep.Utilization[rail] = net.Utilization(rail)
	}
	return rep, nil
}

// Write renders the report.
func (r *Report) Write(w io.Writer) error {
	name := r.Name
	if name == "" {
		name = "scenario"
	}
	if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %6s %10s %10s %10s\n", "from", "to", "sent", "delivered", "loss")
	for _, f := range r.Flows {
		loss := 0.0
		if f.Sent > 0 {
			loss = 1 - float64(f.Delivered)/float64(f.Sent)
		}
		fmt.Fprintf(w, "%6d %6d %10d %10d %9.2f%%\n", f.From, f.To, f.Sent, f.Delivered, 100*loss)
	}
	fmt.Fprintf(w, "route repairs: %d   utilization rail0 %.4f%%  rail1 %.4f%%\n",
		r.Repairs, 100*r.Utilization[0], 100*r.Utilization[1])
	return nil
}
