// Package scenario loads and executes declarative simulation
// scenarios: cluster shape, protocol, application traffic matrix and a
// timed component failure/repair script, all in one JSON document.
// It is the workload-generator front end of cmd/drsim — experiments
// beyond the canned ones can be described in a file and replayed
// deterministically.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"drsnet/internal/runtime"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// Duration is a time.Duration that unmarshals from JSON strings like
// "200ms" or "1m30s" (or from a number of nanoseconds).
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case string:
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", t, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(t))
	default:
		return fmt.Errorf("scenario: duration must be a string or number, have %T", v)
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// TrafficSpec is one periodic application flow.
type TrafficSpec struct {
	From     int      `json:"from"`
	To       int      `json:"to"`
	Interval Duration `json:"interval"`
	// Start delays the flow's first message (default one interval).
	Start Duration `json:"start,omitempty"`
}

// EventSpec is one scripted component state change.
type EventSpec struct {
	At Duration `json:"at"`
	// Kind is "nic" or "backplane".
	Kind string `json:"kind"`
	// Node is required for NICs, ignored for back planes.
	Node int `json:"node,omitempty"`
	Rail int `json:"rail"`
	// Restore brings the component back instead of failing it.
	Restore bool `json:"restore,omitempty"`
}

// Scenario is a complete declarative simulation.
type Scenario struct {
	// Name labels the report.
	Name string `json:"name,omitempty"`
	// Nodes is the cluster size.
	Nodes int `json:"nodes"`
	// Protocol names a routing protocol registered with
	// internal/runtime ("drs", the default; "reactive"; "linkstate";
	// "static"; or any protocol a plugin registered).
	Protocol string `json:"protocol,omitempty"`
	// Duration is the simulated horizon.
	Duration Duration `json:"duration"`
	// Seed drives stochastic pieces (loss).
	Seed uint64 `json:"seed,omitempty"`
	// Switched selects a switched fabric instead of shared hubs.
	Switched bool `json:"switched,omitempty"`
	// LossRate injects random frame loss.
	LossRate float64 `json:"lossRate,omitempty"`
	// DRS tunables.
	ProbeInterval Duration `json:"probeInterval,omitempty"`
	MissThreshold int      `json:"missThreshold,omitempty"`
	StaggerProbes bool     `json:"staggerProbes,omitempty"`
	// PreferLowLatency enables latency-aware rail steering (DRS only).
	PreferLowLatency bool `json:"preferLowLatency,omitempty"`
	// Reactive tunables.
	AdvertiseInterval Duration `json:"advertiseInterval,omitempty"`
	RouteTimeout      Duration `json:"routeTimeout,omitempty"`
	// Traffic is the application flow matrix.
	Traffic []TrafficSpec `json:"traffic"`
	// Events is the failure/repair script.
	Events []EventSpec `json:"events,omitempty"`
}

// Load parses a scenario document.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate applies defaults and checks consistency.
func (s *Scenario) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("scenario: need ≥ 2 nodes, have %d", s.Nodes)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if s.Protocol == "" {
		s.Protocol = runtime.ProtoDRS
	}
	if _, err := runtime.Lookup(s.Protocol); err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	if s.ProbeInterval == 0 {
		s.ProbeInterval = Duration(time.Second)
	}
	if s.MissThreshold == 0 {
		s.MissThreshold = 2
	}
	if s.AdvertiseInterval == 0 {
		s.AdvertiseInterval = Duration(time.Second)
	}
	if s.RouteTimeout == 0 {
		s.RouteTimeout = 6 * s.AdvertiseInterval
	}
	if s.LossRate < 0 || s.LossRate >= 1 {
		return fmt.Errorf("scenario: loss rate %v outside [0,1)", s.LossRate)
	}
	if len(s.Traffic) == 0 {
		return fmt.Errorf("scenario: no traffic flows")
	}
	for i, t := range s.Traffic {
		if t.From < 0 || t.From >= s.Nodes || t.To < 0 || t.To >= s.Nodes || t.From == t.To {
			return fmt.Errorf("scenario: traffic[%d] endpoints (%d,%d) invalid", i, t.From, t.To)
		}
		if t.Interval <= 0 {
			return fmt.Errorf("scenario: traffic[%d] interval must be positive", i)
		}
		if t.Start < 0 {
			return fmt.Errorf("scenario: traffic[%d] start must be non-negative", i)
		}
	}
	seen := make(map[EventSpec]int, len(s.Events))
	for i, e := range s.Events {
		if e.At < 0 || e.At > s.Duration {
			return fmt.Errorf("scenario: events[%d] at %v outside [0,%v]",
				i, time.Duration(e.At), time.Duration(s.Duration))
		}
		switch e.Kind {
		case "nic":
			if e.Node < 0 || e.Node >= s.Nodes {
				return fmt.Errorf("scenario: events[%d] node %d invalid", i, e.Node)
			}
		case "backplane":
			// Node is ignored for back planes; normalize the dedup key so
			// {"backplane", node:0} and {"backplane", node:3} collide.
			e.Node = 0
		default:
			return fmt.Errorf("scenario: events[%d] kind %q (want nic or backplane)", i, e.Kind)
		}
		if e.Rail < 0 || e.Rail >= 2 {
			return fmt.Errorf("scenario: events[%d] rail %d invalid", i, e.Rail)
		}
		if j, dup := seen[e]; dup {
			return fmt.Errorf("scenario: events[%d] duplicates events[%d] (same time, component and action)", i, j)
		}
		seen[e] = i
	}
	return nil
}

// FlowReport is the outcome of one traffic flow.
type FlowReport struct {
	From, To        int
	Sent, Delivered int
}

// Report is the outcome of a scenario run.
type Report struct {
	Name  string
	Flows []FlowReport
	// Repairs counts route repairs across all DRS daemons (0 for
	// baselines).
	Repairs int
	// Utilization per rail at the end of the run.
	Utilization [2]float64
	// Trace carries the protocol event log.
	Trace *trace.Log
}

// Spec translates the document into a runtime.ClusterSpec — the
// declarative layer the unified runtime executes.
func (s *Scenario) Spec() (runtime.ClusterSpec, error) {
	if err := s.Validate(); err != nil {
		return runtime.ClusterSpec{}, err
	}
	spec := runtime.ClusterSpec{
		Nodes:    s.Nodes,
		Protocol: s.Protocol,
		Switched: s.Switched,
		LossRate: s.LossRate,
		Seed:     s.Seed,
		Duration: time.Duration(s.Duration),
		Tunables: runtime.Tunables{
			ProbeInterval:     time.Duration(s.ProbeInterval),
			MissThreshold:     s.MissThreshold,
			StaggerProbes:     s.StaggerProbes,
			PreferLowLatency:  s.PreferLowLatency,
			AdvertiseInterval: time.Duration(s.AdvertiseInterval),
			RouteTimeout:      time.Duration(s.RouteTimeout),
		},
	}
	for _, t := range s.Traffic {
		spec.Flows = append(spec.Flows, runtime.Flow{
			From:     t.From,
			To:       t.To,
			Interval: time.Duration(t.Interval),
			Start:    time.Duration(t.Start),
		})
	}
	cl := topology.Dual(s.Nodes)
	for _, e := range s.Events {
		var comp topology.Component
		if e.Kind == "nic" {
			comp = cl.NIC(e.Node, e.Rail)
		} else {
			comp = cl.Backplane(e.Rail)
		}
		spec.Faults = append(spec.Faults, runtime.Fault{
			At:      time.Duration(e.At),
			Comp:    comp,
			Restore: e.Restore,
		})
	}
	return spec, nil
}

// Run executes the scenario deterministically on the unified runtime.
func (s *Scenario) Run() (*Report, error) {
	spec, err := s.Spec()
	if err != nil {
		return nil, err
	}
	run, err := runtime.Run(spec)
	if err != nil {
		return nil, err
	}

	rep := &Report{Name: s.Name, Trace: run.Trace, Repairs: len(run.Repairs)}
	for _, f := range run.Flows {
		rep.Flows = append(rep.Flows, FlowReport{
			From: f.Flow.From, To: f.Flow.To,
			Sent:      f.Sent,
			Delivered: f.Delivered,
		})
	}
	for rail := 0; rail < 2 && rail < len(run.Utilization); rail++ {
		rep.Utilization[rail] = run.Utilization[rail]
	}
	return rep, nil
}

// Write renders the report.
func (r *Report) Write(w io.Writer) error {
	name := r.Name
	if name == "" {
		name = "scenario"
	}
	if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %6s %10s %10s %10s\n", "from", "to", "sent", "delivered", "loss")
	for _, f := range r.Flows {
		loss := 0.0
		if f.Sent > 0 {
			loss = 1 - float64(f.Delivered)/float64(f.Sent)
		}
		fmt.Fprintf(w, "%6d %6d %10d %10d %9.2f%%\n", f.From, f.To, f.Sent, f.Delivered, 100*loss)
	}
	fmt.Fprintf(w, "route repairs: %d   utilization rail0 %.4f%%  rail1 %.4f%%\n",
		r.Repairs, 100*r.Utilization[0], 100*r.Utilization[1])
	return nil
}
