// Package scenario loads and executes declarative simulation
// scenarios: cluster shape, protocol, application traffic matrix and a
// timed component failure/repair script, all in one JSON document.
// It is the workload-generator front end of cmd/drsim — experiments
// beyond the canned ones can be described in a file and replayed
// deterministically.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"drsnet/internal/chaos"
	"drsnet/internal/invariant"
	"drsnet/internal/linkmon"
	"drsnet/internal/netsim"
	"drsnet/internal/overload"
	"drsnet/internal/runtime"
	"drsnet/internal/topology"
	"drsnet/internal/trace"
)

// Duration is a time.Duration that unmarshals from JSON strings like
// "200ms" or "1m30s" (or from a number of nanoseconds).
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case string:
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %v", t, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(t))
	default:
		return fmt.Errorf("scenario: duration must be a string or number, have %T", v)
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// TrafficSpec is one periodic application flow.
type TrafficSpec struct {
	From     int      `json:"from"`
	To       int      `json:"to"`
	Interval Duration `json:"interval"`
	// Start delays the flow's first message (default one interval).
	Start Duration `json:"start,omitempty"`
	// Stop, when positive, ends the flow; zero runs to the horizon.
	// Strict-delivery invariant scenarios should stop flows ahead of
	// the horizon so the final packet can land before the verdict.
	Stop Duration `json:"stop,omitempty"`
}

// TopologySpec selects the network shape. Fabric kinds derive the
// node count from the shape; a document may leave "nodes" zero or set
// it to exactly the derived value.
type TopologySpec struct {
	// Kind is "dualRail" (the default shape), "fatTree" or "bcube".
	Kind string `json:"kind"`
	// K is the fat-tree arity (even, ≥ 2). Fat-tree only.
	K int `json:"k,omitempty"`
	// N is the BCube switch radix (≥ 2). BCube only.
	N int `json:"n,omitempty"`
	// Level is the BCube level (hosts get level+1 ports). BCube only.
	Level int `json:"level,omitempty"`
}

// EventSpec is one scripted component state change.
type EventSpec struct {
	At Duration `json:"at"`
	// Kind is "nic" or "backplane" (dual-rail), or "nic", "switch" or
	// "trunk" (fabric topologies).
	Kind string `json:"kind"`
	// Node is required for NICs, ignored for other kinds.
	Node int `json:"node,omitempty"`
	Rail int `json:"rail"`
	// Index names the switch or trunk for those kinds.
	Index int `json:"index,omitempty"`
	// Restore brings the component back instead of failing it.
	Restore bool `json:"restore,omitempty"`
}

// ImpairmentSpec is one gray-failure episode: between start and stop
// the named component is degraded (loss/corrupt/delay/jitter), killed
// (optionally in one direction only), or flapped periodically.
type ImpairmentSpec struct {
	Start Duration `json:"start"`
	// Stop ends the episode; zero means it lasts to the horizon.
	Stop Duration `json:"stop,omitempty"`
	// Kind is "nic" or "backplane" (dual-rail), or "nic", "switch" or
	// "trunk" (fabric topologies).
	Kind string `json:"kind"`
	// Node is required for NICs, ignored for other kinds.
	Node int `json:"node,omitempty"`
	Rail int `json:"rail"`
	// Index names the switch or trunk for those kinds.
	Index int `json:"index,omitempty"`
	// Loss and Corrupt are per-frame probabilities in [0,1].
	Loss    float64 `json:"loss,omitempty"`
	Corrupt float64 `json:"corrupt,omitempty"`
	// Delay adds fixed latency; Jitter adds uniform random latency.
	Delay  Duration `json:"delay,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`
	// Kill takes the component down for the whole episode.
	Kill bool `json:"kill,omitempty"`
	// Direction is "both" (default), "tx" or "rx" — which half of the
	// component Kill and flapping affect.
	Direction string `json:"direction,omitempty"`
	// FlapPeriod > 0 cycles the component down/up with this period;
	// FlapDuty is the fraction of each period spent down (default 0.5).
	FlapPeriod Duration `json:"flapPeriod,omitempty"`
	FlapDuty   float64  `json:"flapDuty,omitempty"`
}

// CrashSpec is one scripted daemon fail-stop episode: the node's
// routing process dies at "at" — NICs stay electrically up, frames
// blackhole — and, when "restart" is set, the next incarnation boots
// there, cold or warm.
type CrashSpec struct {
	Node int      `json:"node"`
	At   Duration `json:"at"`
	// Restart, when nonzero, boots the node's next incarnation. It must
	// be strictly after At; zero means the node never returns.
	Restart Duration `json:"restart,omitempty"`
	// Warm restores a crash-time checkpoint (route table, membership
	// view, RTT estimates) at restart instead of relearning cold.
	Warm bool `json:"warm,omitempty"`
}

// PartitionSpec is one timed network-partition episode between a pair
// of nodes: from "start" to "stop" frames between them vanish on the
// selected rail — in both directions, or one only — while every link
// light stays on. Dual-rail topologies only.
type PartitionSpec struct {
	// A and B are the partitioned pair.
	A int `json:"a"`
	B int `json:"b"`
	// Rail selects one segment; -1 cuts every rail.
	Rail int `json:"rail"`
	// Start is when the cut lands; Stop, when present, is when it
	// heals (absent means the partition lasts to the horizon).
	Start Duration `json:"start"`
	Stop  Duration `json:"stop,omitempty"`
	// Direction is "both" (default, the classic symmetric split),
	// "tx" (A→B frames vanish, B goes deaf to A) or "rx" (the
	// mirror-image one-way cut).
	Direction string `json:"direction,omitempty"`
}

// InvariantSpec turns on the forwarding-trace invariant harness
// (internal/invariant) for the run: loop-freedom and bounded stretch
// are always asserted; requireDelivery additionally demands delivery
// or provable disconnection — appropriate for the static fast-failover
// family, too strict for convergence protocols.
type InvariantSpec struct {
	RequireDelivery bool `json:"requireDelivery,omitempty"`
	// MaxHops bounds any packet's forwarding hops (default 8).
	MaxHops int `json:"maxHops,omitempty"`
}

// Scenario is a complete declarative simulation.
type Scenario struct {
	// Name labels the report.
	Name string `json:"name,omitempty"`
	// Nodes is the cluster size. With a fabric topology it may be left
	// zero (the shape determines it).
	Nodes int `json:"nodes"`
	// Topology selects the network shape; absent means the paper's
	// dual-rail cluster.
	Topology *TopologySpec `json:"topology,omitempty"`
	// Protocol names a routing protocol registered with
	// internal/runtime ("drs", the default; "reactive"; "linkstate";
	// "static"; or any protocol a plugin registered).
	Protocol string `json:"protocol,omitempty"`
	// Duration is the simulated horizon.
	Duration Duration `json:"duration"`
	// Seed drives stochastic pieces (loss).
	Seed uint64 `json:"seed,omitempty"`
	// Switched selects a switched fabric instead of shared hubs.
	Switched bool `json:"switched,omitempty"`
	// LossRate injects random frame loss.
	LossRate float64 `json:"lossRate,omitempty"`
	// DRS tunables.
	ProbeInterval Duration `json:"probeInterval,omitempty"`
	MissThreshold int      `json:"missThreshold,omitempty"`
	StaggerProbes bool     `json:"staggerProbes,omitempty"`
	// PreferLowLatency enables latency-aware rail steering (DRS only).
	PreferLowLatency bool `json:"preferLowLatency,omitempty"`
	// StrictLinkEvidence restricts DRS link liveness to round-trip
	// probe confirmations, so asymmetric partitions are detected
	// instead of masked by the peer's own heard traffic (DRS only).
	StrictLinkEvidence bool `json:"strictLinkEvidence,omitempty"`
	// FlapDamping enables RFC 2439-style route-flap damping (DRS
	// only) with linkmon.DefaultDamping thresholds; the Damp* fields
	// override individual thresholds (zero keeps the default).
	FlapDamping    bool     `json:"flapDamping,omitempty"`
	DampSuppress   float64  `json:"dampSuppress,omitempty"`
	DampReuse      float64  `json:"dampReuse,omitempty"`
	DampHalfLife   Duration `json:"dampHalfLife,omitempty"`
	DampMaxPenalty float64  `json:"dampMaxPenalty,omitempty"`
	// AdaptiveRTO enables Jacobson/Karels adaptive probe deadlines (DRS
	// only) with linkmon.DefaultRTO settings; RTOMin and RTOMax
	// override the deadline clamp bounds (zero keeps the default).
	AdaptiveRTO bool     `json:"adaptiveRTO,omitempty"`
	RTOMin      Duration `json:"rtoMin,omitempty"`
	RTOMax      Duration `json:"rtoMax,omitempty"`
	// Overload, when present, enables the DRS control-plane
	// overload-protection layer with overload.Default settings; its
	// fields override individual knobs (zero keeps the default).
	Overload *OverloadSpec `json:"overload,omitempty"`
	// Reactive tunables.
	AdvertiseInterval Duration `json:"advertiseInterval,omitempty"`
	RouteTimeout      Duration `json:"routeTimeout,omitempty"`
	// FailoverTTL stamps the static fast-failover variants' data
	// frames (failover-rotor, failover-arbor; default 6).
	FailoverTTL int `json:"failoverTTL,omitempty"`
	// Invariant, when present, runs the scenario under the forwarding
	// invariant checker and appends its verdict to the report.
	Invariant *InvariantSpec `json:"invariant,omitempty"`
	// Traffic is the application flow matrix.
	Traffic []TrafficSpec `json:"traffic"`
	// Events is the failure/repair script.
	Events []EventSpec `json:"events,omitempty"`
	// Impairments is the gray-failure script.
	Impairments []ImpairmentSpec `json:"impairments,omitempty"`
	// Crashes is the daemon crash–restart script.
	Crashes []CrashSpec `json:"crashes,omitempty"`
	// Partitions is the network-partition script (dual-rail only).
	Partitions []PartitionSpec `json:"partitions,omitempty"`

	// fab is the resolved switched fabric, cached by Validate (nil for
	// dual-rail documents).
	fab *topology.Fabric
}

// fabricShape resolves the document's switched fabric, nil for
// dual-rail documents.
func (s *Scenario) fabricShape() (*topology.Fabric, error) {
	t := s.Topology
	if t == nil || t.Kind == "" || t.Kind == "dualRail" {
		return nil, nil
	}
	switch t.Kind {
	case "fatTree":
		return topology.FatTree(t.K)
	case "bcube":
		return topology.BCube(t.N, t.Level)
	default:
		return nil, fmt.Errorf("unknown topology kind %q (want dualRail, fatTree or bcube)", t.Kind)
	}
}

// Load parses a scenario document.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate applies defaults and checks consistency.
func (s *Scenario) Validate() error {
	fab, err := s.fabricShape()
	if err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	s.fab = fab
	if fab != nil {
		if s.Switched {
			return fmt.Errorf("scenario: switched is a dual-rail ablation; %q fabrics are switched by construction", s.Topology.Kind)
		}
		switch s.Nodes {
		case 0:
			s.Nodes = fab.Hosts()
		case fab.Hosts():
		default:
			return fmt.Errorf("scenario: nodes %d conflicts with %s topology (%d hosts); omit nodes",
				s.Nodes, s.Topology.Kind, fab.Hosts())
		}
	}
	if s.Nodes < 2 {
		return fmt.Errorf("scenario: need ≥ 2 nodes, have %d", s.Nodes)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if s.Protocol == "" {
		s.Protocol = runtime.ProtoDRS
	}
	if _, err := runtime.Lookup(s.Protocol); err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	if s.ProbeInterval == 0 {
		s.ProbeInterval = Duration(time.Second)
	}
	if s.MissThreshold == 0 {
		s.MissThreshold = 2
	}
	if s.AdvertiseInterval == 0 {
		s.AdvertiseInterval = Duration(time.Second)
	}
	if s.RouteTimeout == 0 {
		s.RouteTimeout = 6 * s.AdvertiseInterval
	}
	if s.LossRate < 0 || s.LossRate >= 1 {
		return fmt.Errorf("scenario: loss rate %v outside [0,1)", s.LossRate)
	}
	if s.FailoverTTL < 0 {
		return fmt.Errorf("scenario: failover TTL %d must be ≥ 0", s.FailoverTTL)
	}
	if s.Invariant != nil && s.Invariant.MaxHops < 0 {
		return fmt.Errorf("scenario: invariant maxHops %d must be ≥ 0", s.Invariant.MaxHops)
	}
	if len(s.Traffic) == 0 {
		return fmt.Errorf("scenario: no traffic flows")
	}
	for i, t := range s.Traffic {
		if t.From < 0 || t.From >= s.Nodes || t.To < 0 || t.To >= s.Nodes || t.From == t.To {
			return fmt.Errorf("scenario: traffic[%d] endpoints (%d,%d) invalid", i, t.From, t.To)
		}
		if t.Interval <= 0 {
			return fmt.Errorf("scenario: traffic[%d] interval must be positive", i)
		}
		if t.Start < 0 {
			return fmt.Errorf("scenario: traffic[%d] start must be non-negative", i)
		}
		if t.Stop < 0 {
			return fmt.Errorf("scenario: traffic[%d] stop must be non-negative", i)
		}
		if t.Stop != 0 && t.Stop <= t.Start {
			return fmt.Errorf("scenario: traffic[%d] stop %v not after start %v",
				i, time.Duration(t.Stop), time.Duration(t.Start))
		}
	}
	rails := 2
	if fab != nil {
		rails = fab.Ports()
	}
	seen := make(map[EventSpec]int, len(s.Events))
	for i, e := range s.Events {
		if e.At < 0 || e.At > s.Duration {
			return fmt.Errorf("scenario: events[%d] at %v outside [0,%v]",
				i, time.Duration(e.At), time.Duration(s.Duration))
		}
		switch e.Kind {
		case "nic":
			if e.Node < 0 || e.Node >= s.Nodes {
				return fmt.Errorf("scenario: events[%d] node %d invalid", i, e.Node)
			}
			if e.Rail < 0 || e.Rail >= rails {
				return fmt.Errorf("scenario: events[%d] rail %d invalid", i, e.Rail)
			}
			e.Index = 0
		case "backplane":
			if fab != nil {
				return fmt.Errorf("scenario: events[%d] kind \"backplane\" is dual-rail only; use \"switch\" with an index", i)
			}
			// Node is ignored for back planes; normalize the dedup key so
			// {"backplane", node:0} and {"backplane", node:3} collide.
			e.Node, e.Index = 0, 0
			if e.Rail < 0 || e.Rail >= 2 {
				return fmt.Errorf("scenario: events[%d] rail %d invalid", i, e.Rail)
			}
		case "switch":
			if fab == nil {
				return fmt.Errorf("scenario: events[%d] kind \"switch\" needs a fabric topology", i)
			}
			if e.Index < 0 || e.Index >= fab.Switches() {
				return fmt.Errorf("scenario: events[%d] switch index %d outside [0,%d)", i, e.Index, fab.Switches())
			}
			e.Node, e.Rail = 0, 0
		case "trunk":
			if fab == nil {
				return fmt.Errorf("scenario: events[%d] kind \"trunk\" needs a fabric topology", i)
			}
			if e.Index < 0 || e.Index >= fab.Trunks() {
				return fmt.Errorf("scenario: events[%d] trunk index %d outside [0,%d)", i, e.Index, fab.Trunks())
			}
			e.Node, e.Rail = 0, 0
		default:
			if fab != nil {
				return fmt.Errorf("scenario: events[%d] kind %q (want nic, switch or trunk)", i, e.Kind)
			}
			return fmt.Errorf("scenario: events[%d] kind %q (want nic or backplane)", i, e.Kind)
		}
		if j, dup := seen[e]; dup {
			return fmt.Errorf("scenario: events[%d] duplicates events[%d] (same time, component and action)", i, j)
		}
		seen[e] = i
	}
	for i, im := range s.Impairments {
		if err := s.validateImpairment(i, im); err != nil {
			return err
		}
	}
	if err := s.validateCrashes(); err != nil {
		return err
	}
	if err := s.validatePartitions(); err != nil {
		return err
	}
	if _, err := s.damping(); err != nil {
		return err
	}
	if _, err := s.rto(); err != nil {
		return err
	}
	if _, err := s.overload(); err != nil {
		return err
	}
	return nil
}

// validateCrashes checks the crash–restart script: each episode's
// fields against the document, then the per-node overlap rules the
// chaos layer enforces (a node cannot crash again before a previous
// episode restarted it).
func (s *Scenario) validateCrashes() error {
	for i, c := range s.Crashes {
		if c.Node < 0 || c.Node >= s.Nodes {
			return fmt.Errorf("scenario: crashes[%d] node %d invalid (cluster has %d nodes)", i, c.Node, s.Nodes)
		}
		if c.At < 0 || c.At > s.Duration {
			return fmt.Errorf("scenario: crashes[%d] at %v outside [0,%v]",
				i, time.Duration(c.At), time.Duration(s.Duration))
		}
		if c.Restart != 0 && c.Restart <= c.At {
			return fmt.Errorf("scenario: crashes[%d] restart %v not after crash at %v",
				i, time.Duration(c.Restart), time.Duration(c.At))
		}
		if c.Warm && c.Restart == 0 {
			return fmt.Errorf("scenario: crashes[%d] warm restart requested but the node never restarts", i)
		}
	}
	if err := chaos.ValidateCrashes(s.crashSpecs(), s.Nodes); err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	return nil
}

// validatePartitions checks the partition script: dual-rail only,
// episodes inside the horizon, then the field rules the chaos layer
// enforces.
func (s *Scenario) validatePartitions() error {
	if len(s.Partitions) == 0 {
		return nil
	}
	if s.fab != nil {
		return fmt.Errorf("scenario: partitions are dual-rail only (topology %q)", s.Topology.Kind)
	}
	for i, p := range s.Partitions {
		if p.Start > s.Duration || p.Stop > s.Duration {
			return fmt.Errorf("scenario: partitions[%d] outside [0,%v]", i, time.Duration(s.Duration))
		}
		if _, err := parseDirection(p.Direction); err != nil {
			return fmt.Errorf("scenario: partitions[%d] %v", i, err)
		}
	}
	specs, err := s.partitionSpecs()
	if err != nil {
		return err
	}
	if err := chaos.ValidatePartitions(specs, s.Nodes, 2); err != nil {
		return fmt.Errorf("scenario: %v", err)
	}
	return nil
}

// partitionSpecs maps the document's partition script onto the chaos
// layer.
func (s *Scenario) partitionSpecs() ([]chaos.PartitionSpec, error) {
	if len(s.Partitions) == 0 {
		return nil, nil
	}
	specs := make([]chaos.PartitionSpec, 0, len(s.Partitions))
	for i, p := range s.Partitions {
		dir, err := parseDirection(p.Direction)
		if err != nil {
			return nil, fmt.Errorf("scenario: partitions[%d] %v", i, err)
		}
		rail := p.Rail
		if rail < 0 {
			rail = netsim.AllRails
		}
		specs = append(specs, chaos.PartitionSpec{
			A: p.A, B: p.B, Rail: rail,
			Start: time.Duration(p.Start), Stop: time.Duration(p.Stop),
			Direction: dir,
		})
	}
	return specs, nil
}

// crashSpecs maps the document's crash script onto the chaos layer.
func (s *Scenario) crashSpecs() []chaos.CrashSpec {
	if len(s.Crashes) == 0 {
		return nil
	}
	specs := make([]chaos.CrashSpec, 0, len(s.Crashes))
	for _, c := range s.Crashes {
		specs = append(specs, chaos.CrashSpec{
			Node:      c.Node,
			At:        time.Duration(c.At),
			RestartAt: time.Duration(c.Restart),
			Warm:      c.Warm,
		})
	}
	return specs
}

// OverloadSpec configures the DRS control-plane overload-protection
// layer: token-bucket budgets on probe retransmits and discovery
// broadcasts, hello storm suppression, and the degraded-mode governor
// that pins last-known-good routes when budgets saturate. Presence of
// the block enables the layer; zero fields keep overload.Default
// settings. degradedSheds < 0 disables the governor (budgets still
// apply).
type OverloadSpec struct {
	ProbeRate        float64  `json:"probeRate,omitempty"`
	ProbeBurst       int      `json:"probeBurst,omitempty"`
	QueryRate        float64  `json:"queryRate,omitempty"`
	QueryBurst       int      `json:"queryBurst,omitempty"`
	HelloMinInterval Duration `json:"helloMinInterval,omitempty"`
	QueueCapacity    int      `json:"queueCapacity,omitempty"`
	DegradedSheds    int      `json:"degradedSheds,omitempty"`
	DegradedWindow   Duration `json:"degradedWindow,omitempty"`
	DegradedQuiet    Duration `json:"degradedQuiet,omitempty"`
	JitterFrac       float64  `json:"jitterFrac,omitempty"`
}

// overload builds the DRS overload-protection config from the
// document's block: disabled when absent, defaults from
// overload.Default, individual knobs overridable.
func (s *Scenario) overload() (overload.Config, error) {
	if s.Overload == nil {
		return overload.Config{}, nil
	}
	o := s.Overload
	c := overload.Config{
		Enabled:          true,
		ProbeRate:        o.ProbeRate,
		ProbeBurst:       o.ProbeBurst,
		QueryRate:        o.QueryRate,
		QueryBurst:       o.QueryBurst,
		HelloMinInterval: time.Duration(o.HelloMinInterval),
		QueueCapacity:    o.QueueCapacity,
		DegradedSheds:    o.DegradedSheds,
		DegradedWindow:   time.Duration(o.DegradedWindow),
		DegradedQuiet:    time.Duration(o.DegradedQuiet),
		JitterFrac:       o.JitterFrac,
	}
	if err := c.Normalize(); err != nil {
		return overload.Config{}, fmt.Errorf("scenario: %v", err)
	}
	return c, nil
}

// rto builds the DRS adaptive-RTO config from the document's knobs:
// disabled unless adaptiveRTO is true, defaults from
// linkmon.DefaultRTO, clamp bounds overridable.
func (s *Scenario) rto() (linkmon.RTO, error) {
	if !s.AdaptiveRTO {
		if s.RTOMin != 0 || s.RTOMax != 0 {
			return linkmon.RTO{}, fmt.Errorf("scenario: rto* bounds set but adaptiveRTO is false")
		}
		return linkmon.RTO{}, nil
	}
	r := linkmon.DefaultRTO()
	if s.RTOMin != 0 {
		r.Min = time.Duration(s.RTOMin)
	}
	if s.RTOMax != 0 {
		r.Max = time.Duration(s.RTOMax)
	}
	if err := r.Normalize(); err != nil {
		return linkmon.RTO{}, fmt.Errorf("scenario: %v", err)
	}
	return r, nil
}

// validateImpairment checks one gray-failure episode, with error
// messages that name the offending field and entry.
func (s *Scenario) validateImpairment(i int, im ImpairmentSpec) error {
	switch im.Kind {
	case "nic":
		if im.Node < 0 || im.Node >= s.Nodes {
			return fmt.Errorf("scenario: impairments[%d] node %d invalid (cluster has %d nodes)", i, im.Node, s.Nodes)
		}
		rails := 2
		if s.fab != nil {
			rails = s.fab.Ports()
		}
		if im.Rail < 0 || im.Rail >= rails {
			if s.fab == nil {
				return fmt.Errorf("scenario: impairments[%d] rail %d invalid (dual-rail cluster)", i, im.Rail)
			}
			return fmt.Errorf("scenario: impairments[%d] rail %d outside [0,%d)", i, im.Rail, rails)
		}
	case "backplane":
		// Node is ignored for back planes.
		if s.fab != nil {
			return fmt.Errorf("scenario: impairments[%d] kind \"backplane\" is dual-rail only; use \"switch\" with an index", i)
		}
		if im.Rail < 0 || im.Rail >= 2 {
			return fmt.Errorf("scenario: impairments[%d] rail %d invalid (dual-rail cluster)", i, im.Rail)
		}
	case "switch":
		if s.fab == nil {
			return fmt.Errorf("scenario: impairments[%d] kind \"switch\" needs a fabric topology", i)
		}
		if im.Index < 0 || im.Index >= s.fab.Switches() {
			return fmt.Errorf("scenario: impairments[%d] switch index %d outside [0,%d)", i, im.Index, s.fab.Switches())
		}
	case "trunk":
		if s.fab == nil {
			return fmt.Errorf("scenario: impairments[%d] kind \"trunk\" needs a fabric topology", i)
		}
		if im.Index < 0 || im.Index >= s.fab.Trunks() {
			return fmt.Errorf("scenario: impairments[%d] trunk index %d outside [0,%d)", i, im.Index, s.fab.Trunks())
		}
	default:
		if s.fab != nil {
			return fmt.Errorf("scenario: impairments[%d] kind %q (want nic, switch or trunk)", i, im.Kind)
		}
		return fmt.Errorf("scenario: impairments[%d] kind %q (want nic or backplane)", i, im.Kind)
	}
	if im.Start < 0 || im.Start > s.Duration {
		return fmt.Errorf("scenario: impairments[%d] start %v outside [0,%v]",
			i, time.Duration(im.Start), time.Duration(s.Duration))
	}
	if im.Stop < 0 {
		return fmt.Errorf("scenario: impairments[%d] negative stop %v", i, time.Duration(im.Stop))
	}
	if im.Stop != 0 && im.Stop <= im.Start {
		return fmt.Errorf("scenario: impairments[%d] stop %v not after start %v",
			i, time.Duration(im.Stop), time.Duration(im.Start))
	}
	if im.Loss < 0 || im.Loss > 1 {
		return fmt.Errorf("scenario: impairments[%d] loss probability %v outside [0,1]", i, im.Loss)
	}
	if im.Corrupt < 0 || im.Corrupt > 1 {
		return fmt.Errorf("scenario: impairments[%d] corrupt probability %v outside [0,1]", i, im.Corrupt)
	}
	if im.Delay < 0 {
		return fmt.Errorf("scenario: impairments[%d] negative delay %v", i, time.Duration(im.Delay))
	}
	if im.Jitter < 0 {
		return fmt.Errorf("scenario: impairments[%d] negative jitter %v", i, time.Duration(im.Jitter))
	}
	if _, err := parseDirection(im.Direction); err != nil {
		return fmt.Errorf("scenario: impairments[%d] %v", i, err)
	}
	if im.FlapPeriod < 0 || (im.FlapDuty != 0 && im.FlapPeriod <= 0) {
		return fmt.Errorf("scenario: impairments[%d] flap period must be > 0, got %v",
			i, time.Duration(im.FlapPeriod))
	}
	if im.FlapDuty < 0 || im.FlapDuty >= 1 {
		return fmt.Errorf("scenario: impairments[%d] flap duty %v outside (0,1)", i, im.FlapDuty)
	}
	if im.Kill && im.FlapPeriod > 0 {
		return fmt.Errorf("scenario: impairments[%d] kill and flapPeriod are mutually exclusive", i)
	}
	if !im.Kill && im.FlapPeriod == 0 &&
		im.Loss == 0 && im.Corrupt == 0 && im.Delay == 0 && im.Jitter == 0 {
		return fmt.Errorf("scenario: impairments[%d] does nothing (no loss, corrupt, delay, jitter, kill or flap)", i)
	}
	return nil
}

// parseDirection maps the JSON direction strings onto the simulator's
// Direction values.
func parseDirection(s string) (netsim.Direction, error) {
	switch s {
	case "", "both":
		return netsim.DirBoth, nil
	case "tx":
		return netsim.DirTx, nil
	case "rx":
		return netsim.DirRx, nil
	}
	return 0, fmt.Errorf("direction %q (want both, tx or rx)", s)
}

// damping builds the DRS flap-damping config from the document's
// knobs: disabled unless flapDamping is true, defaults from
// linkmon.DefaultDamping, individual thresholds overridable.
func (s *Scenario) damping() (linkmon.Damping, error) {
	if !s.FlapDamping {
		if s.DampSuppress != 0 || s.DampReuse != 0 || s.DampHalfLife != 0 || s.DampMaxPenalty != 0 {
			return linkmon.Damping{}, fmt.Errorf("scenario: damp* thresholds set but flapDamping is false")
		}
		return linkmon.Damping{}, nil
	}
	d := linkmon.DefaultDamping()
	if s.DampSuppress != 0 {
		d.Suppress = s.DampSuppress
		d.Reuse = 0 // renormalize unless overridden below
		d.Max = 0
	}
	if s.DampReuse != 0 {
		d.Reuse = s.DampReuse
	}
	if s.DampHalfLife != 0 {
		d.HalfLife = time.Duration(s.DampHalfLife)
	}
	if s.DampMaxPenalty != 0 {
		d.Max = s.DampMaxPenalty
	}
	if err := d.Normalize(); err != nil {
		return linkmon.Damping{}, fmt.Errorf("scenario: %v", err)
	}
	return d, nil
}

// FlowReport is the outcome of one traffic flow.
type FlowReport struct {
	From, To        int
	Sent, Delivered int
}

// Report is the outcome of a scenario run.
type Report struct {
	Name  string
	Flows []FlowReport
	// Repairs counts route repairs across all DRS daemons (0 for
	// baselines).
	Repairs int
	// Utilization per rail at the end of the run.
	Utilization [2]float64
	// Invariant is the forwarding-invariant verdict (nil unless the
	// scenario enabled the checker).
	Invariant *invariant.Report
	// Trace carries the protocol event log.
	Trace *trace.Log
}

// Spec translates the document into a runtime.ClusterSpec — the
// declarative layer the unified runtime executes.
func (s *Scenario) Spec() (runtime.ClusterSpec, error) {
	if err := s.Validate(); err != nil {
		return runtime.ClusterSpec{}, err
	}
	damp, err := s.damping()
	if err != nil {
		return runtime.ClusterSpec{}, err
	}
	rto, err := s.rto()
	if err != nil {
		return runtime.ClusterSpec{}, err
	}
	ovl, err := s.overload()
	if err != nil {
		return runtime.ClusterSpec{}, err
	}
	spec := runtime.ClusterSpec{
		Nodes:    s.Nodes,
		Protocol: s.Protocol,
		Switched: s.Switched,
		LossRate: s.LossRate,
		Seed:     s.Seed,
		Duration: time.Duration(s.Duration),
		Tunables: runtime.Tunables{
			ProbeInterval:      time.Duration(s.ProbeInterval),
			MissThreshold:      s.MissThreshold,
			StaggerProbes:      s.StaggerProbes,
			PreferLowLatency:   s.PreferLowLatency,
			StrictLinkEvidence: s.StrictLinkEvidence,
			FlapDamping:        damp,
			AdaptiveRTO:        rto,
			Overload:           ovl,
			AdvertiseInterval:  time.Duration(s.AdvertiseInterval),
			RouteTimeout:       time.Duration(s.RouteTimeout),
			FailoverTTL:        s.FailoverTTL,
			Lifecycle:          len(s.Crashes) > 0,
		},
		Crashes: s.crashSpecs(),
	}
	spec.Partitions, err = s.partitionSpecs()
	if err != nil {
		return runtime.ClusterSpec{}, err
	}
	if t := s.Topology; t != nil {
		// Nodes was derived (or checked) against the shape in Validate;
		// the runtime re-derives and re-checks it from the same spec.
		spec.Topology = runtime.TopologySpec{Kind: t.Kind, K: t.K, N: t.N, Level: t.Level}
	}
	if s.Invariant != nil {
		spec.Invariant = &invariant.Config{
			RequireDelivery: s.Invariant.RequireDelivery,
			MaxHops:         s.Invariant.MaxHops,
		}
	}
	for _, t := range s.Traffic {
		spec.Flows = append(spec.Flows, runtime.Flow{
			From:     t.From,
			To:       t.To,
			Interval: time.Duration(t.Interval),
			Start:    time.Duration(t.Start),
			Stop:     time.Duration(t.Stop),
		})
	}
	cl := topology.Dual(s.Nodes)
	component := func(kind string, node, rail, index int) topology.Component {
		if s.fab != nil {
			switch kind {
			case "nic":
				return s.fab.NIC(node, rail)
			case "switch":
				return s.fab.Switch(index)
			default: // "trunk" — Validate rejected everything else
				return s.fab.TrunkComp(index)
			}
		}
		if kind == "nic" {
			return cl.NIC(node, rail)
		}
		return cl.Backplane(rail)
	}
	for _, e := range s.Events {
		spec.Faults = append(spec.Faults, runtime.Fault{
			At:      time.Duration(e.At),
			Comp:    component(e.Kind, e.Node, e.Rail, e.Index),
			Restore: e.Restore,
		})
	}
	for _, im := range s.Impairments {
		comp := component(im.Kind, im.Node, im.Rail, im.Index)
		dir, err := parseDirection(im.Direction)
		if err != nil {
			return runtime.ClusterSpec{}, fmt.Errorf("scenario: %v", err)
		}
		spec.Impairments = append(spec.Impairments, chaos.Spec{
			Comp:  comp,
			Start: time.Duration(im.Start),
			Stop:  time.Duration(im.Stop),
			Impair: netsim.Impairment{
				Loss:    im.Loss,
				Corrupt: im.Corrupt,
				Delay:   time.Duration(im.Delay),
				Jitter:  time.Duration(im.Jitter),
			},
			Kill:       im.Kill,
			Direction:  dir,
			FlapPeriod: time.Duration(im.FlapPeriod),
			FlapDuty:   im.FlapDuty,
		})
	}
	return spec, nil
}

// Run executes the scenario deterministically on the unified runtime.
func (s *Scenario) Run() (*Report, error) {
	spec, err := s.Spec()
	if err != nil {
		return nil, err
	}
	run, err := runtime.Run(spec)
	if err != nil {
		return nil, err
	}

	rep := &Report{Name: s.Name, Trace: run.Trace, Repairs: len(run.Repairs), Invariant: run.Invariant}
	for _, f := range run.Flows {
		rep.Flows = append(rep.Flows, FlowReport{
			From: f.Flow.From, To: f.Flow.To,
			Sent:      f.Sent,
			Delivered: f.Delivered,
		})
	}
	for rail := 0; rail < 2 && rail < len(run.Utilization); rail++ {
		rep.Utilization[rail] = run.Utilization[rail]
	}
	return rep, nil
}

// Write renders the report.
func (r *Report) Write(w io.Writer) error {
	name := r.Name
	if name == "" {
		name = "scenario"
	}
	if _, err := fmt.Fprintf(w, "# %s\n", name); err != nil {
		return err
	}
	fmt.Fprintf(w, "%6s %6s %10s %10s %10s\n", "from", "to", "sent", "delivered", "loss")
	for _, f := range r.Flows {
		loss := 0.0
		if f.Sent > 0 {
			loss = 1 - float64(f.Delivered)/float64(f.Sent)
		}
		fmt.Fprintf(w, "%6d %6d %10d %10d %9.2f%%\n", f.From, f.To, f.Sent, f.Delivered, 100*loss)
	}
	fmt.Fprintf(w, "route repairs: %d   utilization rail0 %.4f%%  rail1 %.4f%%\n",
		r.Repairs, 100*r.Utilization[0], 100*r.Utilization[1])
	// The invariant line appears only when the scenario enabled the
	// checker, keeping reports (and their goldens) byte-identical
	// otherwise.
	if inv := r.Invariant; inv != nil {
		verdict := "ok"
		if !inv.Clean() {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "invariant: %s   packets %d delivered %d loops %d revisits %d stretch %d maxhops %d\n",
			verdict, inv.Packets, inv.Delivered, inv.Loops, inv.Revisits, inv.StretchViolations, inv.MaxHopsSeen)
	}
	return nil
}
