package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"drsnet/internal/trace"
)

const sampleJSON = `{
  "name": "nic failover",
  "nodes": 5,
  "duration": "30s",
  "probeInterval": "500ms",
  "traffic": [
    {"from": 0, "to": 1, "interval": "100ms"},
    {"from": 2, "to": 3, "interval": "250ms"}
  ],
  "events": [
    {"at": "10s", "kind": "nic", "node": 1, "rail": 0},
    {"at": "20s", "kind": "nic", "node": 1, "rail": 0, "restore": true}
  ]
}`

func TestLoadSample(t *testing.T) {
	s, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 5 || s.Protocol != "drs" {
		t.Fatalf("scenario = %+v", s)
	}
	if time.Duration(s.ProbeInterval) != 500*time.Millisecond {
		t.Fatalf("probe interval = %v", time.Duration(s.ProbeInterval))
	}
	if len(s.Traffic) != 2 || len(s.Events) != 2 {
		t.Fatalf("traffic/events = %d/%d", len(s.Traffic), len(s.Events))
	}
	if !s.Events[1].Restore {
		t.Fatal("restore flag lost")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	bad := `{"nodes": 4, "duration": "10s", "traffic": [{"from":0,"to":1,"interval":"1s"}], "bogus": 1}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1m30s"`), &d); err != nil || time.Duration(d) != 90*time.Second {
		t.Fatalf("string form: %v %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`5000000000`), &d); err != nil || time.Duration(d) != 5*time.Second {
		t.Fatalf("numeric form: %v %v", time.Duration(d), err)
	}
	if err := json.Unmarshal([]byte(`"ten seconds"`), &d); err == nil {
		t.Fatal("garbage duration accepted")
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Fatal("bool duration accepted")
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Fatalf("marshal: %s %v", out, err)
	}
}

func TestValidateDefaultsAndErrors(t *testing.T) {
	good := func() *Scenario {
		return &Scenario{
			Nodes:    4,
			Duration: Duration(10 * time.Second),
			Traffic:  []TrafficSpec{{From: 0, To: 1, Interval: Duration(time.Second)}},
		}
	}
	s := good()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Protocol != "drs" || s.MissThreshold != 2 || time.Duration(s.ProbeInterval) != time.Second {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if time.Duration(s.RouteTimeout) != 6*time.Second {
		t.Fatalf("route timeout default = %v", time.Duration(s.RouteTimeout))
	}

	for name, mutate := range map[string]func(*Scenario){
		"nodes":            func(s *Scenario) { s.Nodes = 1 },
		"duration":         func(s *Scenario) { s.Duration = 0 },
		"protocol":         func(s *Scenario) { s.Protocol = "ospf" },
		"loss":             func(s *Scenario) { s.LossRate = 1 },
		"no traffic":       func(s *Scenario) { s.Traffic = nil },
		"traffic self":     func(s *Scenario) { s.Traffic[0].To = 0 },
		"traffic oob":      func(s *Scenario) { s.Traffic[0].To = 9 },
		"traffic interval": func(s *Scenario) { s.Traffic[0].Interval = 0 },
		"traffic start":    func(s *Scenario) { s.Traffic[0].Start = Duration(-1) },
		"event late": func(s *Scenario) {
			s.Events = []EventSpec{{At: Duration(time.Minute), Kind: "nic", Rail: 0}}
		},
		"event kind": func(s *Scenario) {
			s.Events = []EventSpec{{At: Duration(time.Second), Kind: "meteor", Rail: 0}}
		},
		"event node": func(s *Scenario) {
			s.Events = []EventSpec{{At: Duration(time.Second), Kind: "nic", Node: 9, Rail: 0}}
		},
		"event rail": func(s *Scenario) {
			s.Events = []EventSpec{{At: Duration(time.Second), Kind: "backplane", Rail: 5}}
		},
	} {
		s := good()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunFailoverScenario(t *testing.T) {
	s, err := Load(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 2 {
		t.Fatalf("flows = %+v", rep.Flows)
	}
	// Flow 0→1 crosses the failure; the DRS failover bounds the loss
	// to the detection window (≈1–1.5 s of a 20 s active failure
	// window at 100 ms per message → a handful of messages).
	f01 := rep.Flows[0]
	if f01.Sent < 290 {
		t.Fatalf("flow 0→1 sent only %d", f01.Sent)
	}
	if lost := f01.Sent - f01.Delivered; lost > 20 {
		t.Fatalf("flow 0→1 lost %d of %d — failover failed", lost, f01.Sent)
	}
	// Flow 2→3 is untouched by the failure.
	f23 := rep.Flows[1]
	if f23.Delivered < f23.Sent-1 {
		t.Fatalf("bystander flow lost traffic: %+v", f23)
	}
	if rep.Repairs == 0 {
		t.Fatal("no repairs recorded")
	}
	if rep.Utilization[0] <= 0 || rep.Utilization[1] <= 0 {
		t.Fatalf("utilization = %+v", rep.Utilization)
	}
	// Events recorded the failover.
	if rep.Trace.Count(trace.KindLinkDown) == 0 || rep.Trace.Count(trace.KindLinkUp) == 0 {
		t.Fatal("trace missing link transitions")
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nic failover") || !strings.Contains(sb.String(), "route repairs") {
		t.Fatalf("report: %q", sb.String())
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Report {
		s, err := Load(strings.NewReader(sampleJSON))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("nondeterministic flow %d: %+v vs %+v", i, a.Flows[i], b.Flows[i])
		}
	}
	if a.Repairs != b.Repairs {
		t.Fatalf("nondeterministic repairs: %d vs %d", a.Repairs, b.Repairs)
	}
}

func TestRunBaselines(t *testing.T) {
	base := `{
	  "nodes": 4, "duration": "20s", "protocol": "%s",
	  "traffic": [{"from": 0, "to": 1, "interval": "200ms"}],
	  "events": [{"at": "8s", "kind": "nic", "node": 1, "rail": 0}]
	}`
	for _, proto := range []string{"reactive", "static"} {
		s, err := Load(strings.NewReader(strings.ReplaceAll(base, "%s", proto)))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		f := rep.Flows[0]
		if f.Sent == 0 {
			t.Fatalf("%s: nothing sent", proto)
		}
		if proto == "static" {
			// After the failure, static loses everything.
			if f.Delivered >= f.Sent-10 {
				t.Fatalf("static delivered too much: %+v", f)
			}
		}
		if rep.Repairs != 0 {
			t.Fatalf("%s: repairs = %d, want 0", proto, rep.Repairs)
		}
	}
}

func TestRunSwitchedAndLossy(t *testing.T) {
	doc := `{
	  "nodes": 4, "duration": "10s", "switched": true, "lossRate": 0.05,
	  "probeInterval": "250ms",
	  "traffic": [{"from": 0, "to": 1, "interval": "100ms"}]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Flows[0]
	if f.Delivered < f.Sent*85/100 {
		t.Fatalf("delivered %d of %d at 5%% loss", f.Delivered, f.Sent)
	}
}
