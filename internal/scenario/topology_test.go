package scenario

import (
	"strings"
	"testing"
	"time"
)

// fatTreeDoc returns a minimal valid fat-tree scenario document.
func fatTreeDoc() *Scenario {
	return &Scenario{
		Topology: &TopologySpec{Kind: "fatTree", K: 4},
		Duration: Duration(10 * time.Second),
		Traffic:  []TrafficSpec{{From: 0, To: 15, Interval: Duration(time.Second)}},
	}
}

func TestTopologyDefaultsAndDerivedNodes(t *testing.T) {
	s := fatTreeDoc()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 16 {
		t.Fatalf("derived nodes = %d, want 16", s.Nodes)
	}

	// An explicit node count matching the shape is accepted too.
	s = fatTreeDoc()
	s.Nodes = 16
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// A dual-rail kind spelled out behaves exactly like no topology block.
	s = fatTreeDoc()
	s.Topology = &TopologySpec{Kind: "dualRail"}
	s.Nodes = 16
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTopologyValidationErrors checks that malformed topology blocks —
// and events/impairments that do not fit the selected shape — are
// rejected with an error naming the offending field.
func TestTopologyValidationErrors(t *testing.T) {
	for name, tc := range map[string]struct {
		mutate func(*Scenario)
		want   string
	}{
		"unknown kind": {
			func(s *Scenario) { s.Topology.Kind = "torus" },
			`unknown topology kind "torus"`,
		},
		"odd fat-tree arity": {
			func(s *Scenario) { s.Topology.K = 5 },
			"fat-tree arity must be even",
		},
		"bcube radix too small": {
			func(s *Scenario) { s.Topology = &TopologySpec{Kind: "bcube", N: 1, Level: 1} },
			"BCube radix must be ≥ 2",
		},
		"nodes conflict": {
			func(s *Scenario) { s.Nodes = 12 },
			"conflicts with fatTree topology",
		},
		"switched ablation": {
			func(s *Scenario) { s.Switched = true },
			"switched is a dual-rail ablation",
		},
		"backplane event under fabric": {
			func(s *Scenario) {
				s.Events = []EventSpec{{At: Duration(time.Second), Kind: "backplane"}}
			},
			`kind "backplane" is dual-rail only`,
		},
		"switch index out of range": {
			func(s *Scenario) {
				s.Events = []EventSpec{{At: Duration(time.Second), Kind: "switch", Index: 20}}
			},
			"switch index 20 outside [0,20)",
		},
		"trunk index out of range": {
			func(s *Scenario) {
				s.Events = []EventSpec{{At: Duration(time.Second), Kind: "trunk", Index: 64}}
			},
			"trunk index 64 outside [0,32)",
		},
		"nic rail beyond port count": {
			func(s *Scenario) {
				s.Events = []EventSpec{{At: Duration(time.Second), Kind: "nic", Node: 0, Rail: 1}}
			},
			"rail 1 invalid",
		},
		"unknown event kind names fabric kinds": {
			func(s *Scenario) {
				s.Events = []EventSpec{{At: Duration(time.Second), Kind: "meteor"}}
			},
			"want nic, switch or trunk",
		},
		"switch impairment index out of range": {
			func(s *Scenario) {
				s.Impairments = []ImpairmentSpec{{Start: Duration(time.Second), Kind: "switch", Index: -1, Loss: 1}}
			},
			"switch index -1 outside",
		},
		"backplane impairment under fabric": {
			func(s *Scenario) {
				s.Impairments = []ImpairmentSpec{{Start: Duration(time.Second), Kind: "backplane", Loss: 1}}
			},
			`kind "backplane" is dual-rail only`,
		},
	} {
		s := fatTreeDoc()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}

	// Fabric-only event kinds are rejected in dual-rail documents.
	s := fatTreeDoc()
	s.Topology = nil
	s.Nodes = 16
	s.Events = []EventSpec{{At: Duration(time.Second), Kind: "switch"}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), `kind "switch" needs a fabric topology`) {
		t.Errorf("dual-rail switch event: err = %v", err)
	}
	s = fatTreeDoc()
	s.Topology = nil
	s.Nodes = 16
	s.Events = []EventSpec{{At: Duration(time.Second), Kind: "trunk"}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), `kind "trunk" needs a fabric topology`) {
		t.Errorf("dual-rail trunk event: err = %v", err)
	}
}

func TestTopologyJSONRejectsMalformedBlock(t *testing.T) {
	for name, doc := range map[string]string{
		"unknown kind": `{"topology": {"kind": "torus"}, "duration": "5s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}]}`,
		"bogus field": `{"topology": {"kind": "fatTree", "k": 4, "pods": 9}, "duration": "5s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}]}`,
		"missing arity": `{"topology": {"kind": "fatTree"}, "duration": "5s",
			"traffic": [{"from": 0, "to": 1, "interval": "1s"}]}`,
	} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFatTreeScenarioToRFailure runs DRS over a k=4 fat-tree with a
// top-of-rack outage: the flow whose source sits under the failed
// edge switch loses traffic while the outage lasts, the flow in
// another pod is untouched.
func TestFatTreeScenarioToRFailure(t *testing.T) {
	doc := `{
	  "topology": {"kind": "fatTree", "k": 4},
	  "duration": "30s",
	  "probeInterval": "500ms",
	  "traffic": [
	    {"from": 0, "to": 15, "interval": "200ms", "stop": "28s"},
	    {"from": 4, "to": 12, "interval": "200ms", "stop": "28s"}
	  ],
	  "events": [
	    {"at": "10s", "kind": "switch", "index": 0},
	    {"at": "20s", "kind": "switch", "index": 0, "restore": true}
	  ]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flows) != 2 {
		t.Fatalf("%d flow reports", len(rep.Flows))
	}
	severed, healthy := rep.Flows[0], rep.Flows[1]
	if severed.Sent == 0 || healthy.Sent == 0 {
		t.Fatalf("flows sent %d/%d, want both > 0", severed.Sent, healthy.Sent)
	}
	// Host 0 is single-homed on edge switch 0: the 10 s outage must
	// cost the severed flow a visible chunk of its deliveries. ~50 of
	// ~140 sends fall inside the outage.
	lost := severed.Sent - severed.Delivered
	if lost < 20 {
		t.Fatalf("severed flow lost only %d of %d sends across a 10s ToR outage", lost, severed.Sent)
	}
	if severed.Delivered == 0 {
		t.Fatal("severed flow never recovered after the ToR restore")
	}
	if healthy.Delivered != healthy.Sent {
		t.Fatalf("other-pod flow lost traffic: %d of %d delivered", healthy.Delivered, healthy.Sent)
	}
}
