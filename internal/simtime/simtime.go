// Package simtime provides the virtual clock and deterministic event
// scheduler underneath the packet-level network simulator.
//
// The scheduler is strictly single-threaded: events run one at a time,
// in timestamp order, with ties broken by scheduling order. Given the
// same initial events, a simulation therefore always unfolds
// identically — the property every protocol experiment in this
// repository relies on.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the simulation.
type Time int64

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Timer is a handle to a scheduled event; it can be cancelled.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op. Cancel reports
// whether the event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.cancelled || t.index == -2 {
		return false
	}
	t.cancelled = true
	return true
}

// When returns the simulated time the timer fires at.
func (t *Timer) When() Time { return t.at }

// Scheduler is a deterministic discrete-event executor.
// It is not safe for concurrent use; simulations are single-threaded
// by design (parallelism in this repository lives one level up, across
// independent simulations).
type Scheduler struct {
	now  Time
	heap timerHeap
	seq  uint64
	// executed counts events that have run (for tests and tracing).
	executed uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns the number of events that have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of scheduled, uncancelled events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, t := range s.heap {
		if !t.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: that is always a protocol bug, and silently reordering time
// would destroy determinism.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("simtime: nil event function")
	}
	t := &Timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, t)
	return t
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now.Add(d), fn)
}

// Step runs the next pending event, advancing the clock to its
// timestamp. It reports whether an event ran (false when the queue is
// empty).
func (s *Scheduler) Step() bool {
	for s.heap.Len() > 0 {
		t := heap.Pop(&s.heap).(*Timer)
		t.index = -2 // mark fired/expired
		if t.cancelled {
			continue
		}
		s.now = t.at
		s.executed++
		t.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the event budget is
// exhausted. A zero or negative budget means no limit. It returns the
// number of events executed.
func (s *Scheduler) Run(budget int) int {
	n := 0
	for budget <= 0 || n < budget {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes all events with timestamps ≤ deadline and then
// advances the clock to the deadline. It returns the number of events
// executed.
func (s *Scheduler) RunUntil(deadline Time) int {
	if deadline < s.now {
		panic(fmt.Sprintf("simtime: RunUntil(%v) before now %v", deadline, s.now))
	}
	n := 0
	for {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		if s.Step() {
			n++
		}
	}
	s.now = deadline
	return n
}

// peek returns the timestamp of the next uncancelled event.
func (s *Scheduler) peek() (Time, bool) {
	for s.heap.Len() > 0 {
		t := s.heap[0]
		if t.cancelled {
			heap.Pop(&s.heap)
			t.index = -2
			continue
		}
		return t.at, true
	}
	return 0, false
}

// timerHeap orders timers by (time, sequence).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
