// Package simtime provides the virtual clock and deterministic event
// scheduler underneath the packet-level network simulator.
//
// The scheduler is strictly single-threaded: events run one at a time,
// in timestamp order, with ties broken by scheduling order. Given the
// same initial events, a simulation therefore always unfolds
// identically — the property every protocol experiment in this
// repository relies on.
package simtime

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the simulation.
type Time int64

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Timer is a handle to a scheduled event; it can be cancelled.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	call      func(any) // handle-free path: call(arg) instead of fn()
	arg       any
	cancelled bool
	pooled    bool // recycled after firing; never escapes to callers
	index     int  // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op. Cancel reports
// whether the event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.cancelled || t.index == -2 {
		return false
	}
	t.cancelled = true
	return true
}

// When returns the simulated time the timer fires at.
func (t *Timer) When() Time { return t.at }

// Scheduler is a deterministic discrete-event executor.
// It is not safe for concurrent use; simulations are single-threaded
// by design (parallelism in this repository lives one level up, across
// independent simulations).
type Scheduler struct {
	now  Time
	heap []*Timer // binary min-heap ordered by (at, seq)
	seq  uint64
	// executed counts events that have run (for tests and tracing).
	executed uint64

	// Timer recycling for the handle-free AtCall path. Fired pooled
	// timers go back on the free list; timers handed out by At never
	// do, because the caller may still hold the handle.
	free []*Timer
	slab []Timer // block-allocated backing store for pooled timers
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns the number of events that have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of scheduled, uncancelled events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, t := range s.heap {
		if !t.cancelled {
			n++
		}
	}
	return n
}

func (s *Scheduler) checkAt(at Time) {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", at, s.now))
	}
}

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: that is always a protocol bug, and silently reordering time
// would destroy determinism.
func (s *Scheduler) At(at Time, fn func()) *Timer {
	s.checkAt(at)
	if fn == nil {
		panic("simtime: nil event function")
	}
	t := &Timer{at: at, seq: s.seq, fn: fn}
	s.seq++
	s.push(t)
	return t
}

// AtCall schedules call(arg) to run at absolute time at. Unlike At it
// returns no handle and allocates nothing in steady state: the timer
// comes from an internal pool and is recycled once it fires. Use it on
// hot paths (per-frame delivery events) where the event is never
// cancelled; `call` should be a long-lived bound value (a method
// value stored once, not a fresh closure per call).
func (s *Scheduler) AtCall(at Time, call func(any), arg any) {
	s.checkAt(at)
	if call == nil {
		panic("simtime: nil event function")
	}
	var t *Timer
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		t.cancelled = false
	} else {
		if len(s.slab) == cap(s.slab) {
			s.slab = make([]Timer, 0, 128)
		}
		s.slab = s.slab[:len(s.slab)+1]
		t = &s.slab[len(s.slab)-1]
		t.pooled = true
	}
	t.at, t.seq, t.call, t.arg = at, s.seq, call, arg
	s.seq++
	s.push(t)
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now.Add(d), fn)
}

// AfterFunc schedules fn to run d from now and returns a cancel
// function — the shape the clock.Clock seam exposes, so a Scheduler
// can sit directly behind a clock.Sim adapter. The returned function
// reports whether the event was still pending.
func (s *Scheduler) AfterFunc(d time.Duration, fn func()) (cancel func() bool) {
	return s.After(d, fn).Cancel
}

// Step runs the next pending event, advancing the clock to its
// timestamp. It reports whether an event ran (false when the queue is
// empty).
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		t := s.pop()
		if t.cancelled {
			s.recycle(t)
			continue
		}
		s.now = t.at
		s.executed++
		if t.call != nil {
			call, arg := t.call, t.arg
			s.recycle(t)
			call(arg)
		} else {
			t.fn()
		}
		return true
	}
	return false
}

// recycle returns a pooled timer to the free list. Timers created by
// At are left for the garbage collector — their handles may still be
// referenced by the caller.
func (s *Scheduler) recycle(t *Timer) {
	if !t.pooled {
		return
	}
	t.call, t.arg, t.fn = nil, nil, nil
	s.free = append(s.free, t)
}

// Run executes events until the queue is empty or the event budget is
// exhausted. A zero or negative budget means no limit. It returns the
// number of events executed.
func (s *Scheduler) Run(budget int) int {
	n := 0
	for budget <= 0 || n < budget {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes all events with timestamps ≤ deadline and then
// advances the clock to the deadline. It returns the number of events
// executed.
func (s *Scheduler) RunUntil(deadline Time) int {
	if deadline < s.now {
		panic(fmt.Sprintf("simtime: RunUntil(%v) before now %v", deadline, s.now))
	}
	n := 0
	for {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		if s.Step() {
			n++
		}
	}
	s.now = deadline
	return n
}

// peek returns the timestamp of the next uncancelled event.
func (s *Scheduler) peek() (Time, bool) {
	for len(s.heap) > 0 {
		t := s.heap[0]
		if t.cancelled {
			s.recycle(s.pop())
			continue
		}
		return t.at, true
	}
	return 0, false
}

// less orders timers by (time, sequence) — a total order, so any
// correct heap yields the identical execution sequence.
func (t *Timer) less(u *Timer) bool {
	if t.at != u.at {
		return t.at < u.at
	}
	return t.seq < u.seq
}

// push inserts t into the heap and sifts it up.
func (s *Scheduler) push(t *Timer) {
	s.heap = append(s.heap, t)
	h := s.heap
	i := len(h) - 1
	t.index = i
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].less(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		h[i].index = i
		h[p].index = p
		i = p
	}
}

// pop removes and returns the minimum timer, marking it fired.
func (s *Scheduler) pop() *Timer {
	h := s.heap
	n := len(h)
	top := h[0]
	last := h[n-1]
	h[n-1] = nil
	s.heap = h[:n-1]
	if n > 1 {
		h = s.heap
		h[0] = last
		last.index = 0
		i := 0
		for {
			l := 2*i + 1
			if l >= len(h) {
				break
			}
			min := l
			if r := l + 1; r < len(h) && h[r].less(h[l]) {
				min = r
			}
			if !h[min].less(h[i]) {
				break
			}
			h[i], h[min] = h[min], h[i]
			h[i].index = i
			h[min].index = min
			i = min
		}
	}
	top.index = -2 // mark fired/expired
	return top
}
