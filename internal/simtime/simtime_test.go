package simtime

import (
	"testing"
	"time"
)

func TestOrderingByTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != Time(30*time.Millisecond) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(time.Second), func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break unstable: %v", order)
		}
	}
}

func TestClockAdvancesOnlyAtEvents(t *testing.T) {
	s := NewScheduler()
	fired := Time(-1)
	s.After(5*time.Second, func() { fired = s.Now() })
	if s.Now() != 0 {
		t.Fatal("clock moved before Step")
	}
	if !s.Step() {
		t.Fatal("Step found no event")
	}
	if fired != Time(5*time.Second) {
		t.Fatalf("event saw now = %v", fired)
	}
	if s.Step() {
		t.Fatal("Step ran a phantom event")
	}
}

func TestEventsScheduledDuringEvents(t *testing.T) {
	s := NewScheduler()
	var log []string
	s.After(time.Second, func() {
		log = append(log, "a")
		s.After(time.Second, func() { log = append(log, "c") })
		s.After(0, func() { log = append(log, "b") }) // same timestamp, runs after current
	})
	s.Run(0)
	if want := []string{"a", "b", "c"}; len(log) != 3 || log[0] != want[0] || log[1] != want[1] || log[2] != want[2] {
		t.Fatalf("log = %v", log)
	}
	if s.Executed() != 3 {
		t.Fatalf("executed = %d", s.Executed())
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel reported not pending")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel reported pending")
	}
	s.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Clock does not advance for cancelled events.
	if s.Now() != 0 {
		t.Fatalf("now = %v after cancelled event", s.Now())
	}
}

func TestCancelAfterFiring(t *testing.T) {
	s := NewScheduler()
	tm := s.After(0, func() {})
	s.Run(0)
	if tm.Cancel() {
		t.Fatal("Cancel after firing reported pending")
	}
}

func TestCancelNil(t *testing.T) {
	var tm *Timer
	if tm.Cancel() {
		t.Fatal("nil Cancel reported pending")
	}
}

func TestRunBudget(t *testing.T) {
	s := NewScheduler()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		s.After(time.Millisecond, reschedule)
	}
	s.After(time.Millisecond, reschedule)
	if n := s.Run(100); n != 100 {
		t.Fatalf("Run(100) executed %d", n)
	}
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.After(d, func() { fired = append(fired, s.Now()) })
	}
	n := s.RunUntil(Time(2 * time.Second))
	if n != 2 || len(fired) != 2 {
		t.Fatalf("RunUntil ran %d events (%v)", n, fired)
	}
	if s.Now() != Time(2*time.Second) {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	// Deadline between events still advances the clock.
	s.RunUntil(Time(2500 * time.Millisecond))
	if s.Now() != Time(2500*time.Millisecond) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.After(time.Second, func() {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event function did not panic")
		}
	}()
	s.After(time.Second, nil)
}

func TestRunUntilPastPanics(t *testing.T) {
	s := NewScheduler()
	s.After(time.Second, func() {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil in the past did not panic")
		}
	}()
	s.RunUntil(0)
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(0).Add(1500 * time.Millisecond)
	if tt != Time(1500*time.Millisecond) {
		t.Fatalf("Add = %v", tt)
	}
	if d := tt.Sub(Time(500 * time.Millisecond)); d != time.Second {
		t.Fatalf("Sub = %v", d)
	}
	if tt.Duration() != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", tt.Duration())
	}
	if tt.String() != "1.5s" {
		t.Fatalf("String = %q", tt.String())
	}
}

func TestManyEventsStress(t *testing.T) {
	s := NewScheduler()
	const n = 10000
	var count int
	// Schedule in a scrambled but deterministic order.
	for i := 0; i < n; i++ {
		at := Time((i*7919)%n) * Time(time.Millisecond)
		s.At(at, func() { count++ })
	}
	prev := Time(-1)
	for s.Step() {
		if s.Now() < prev {
			t.Fatal("time went backwards")
		}
		prev = s.Now()
	}
	if count != n {
		t.Fatalf("ran %d events, want %d", count, n)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%64)*time.Microsecond, fn)
		if i%64 == 63 {
			s.Run(0)
		}
	}
	s.Run(0)
}

func TestAtCallSharesOrderingWithAt(t *testing.T) {
	s := NewScheduler()
	var order []int
	record := func(arg any) { order = append(order, arg.(int)) }
	s.At(Time(time.Second), func() { order = append(order, 0) })
	s.AtCall(Time(time.Second), record, 1)
	s.At(Time(time.Second), func() { order = append(order, 2) })
	s.AtCall(Time(time.Second), record, 3)
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("AtCall/At interleaving unstable: %v", order)
		}
	}
}

func TestAtCallRecyclesTimers(t *testing.T) {
	s := NewScheduler()
	fired := 0
	count := func(any) { fired++ }
	// Self-rescheduling chain: steady state must reuse one pooled timer.
	var step func(any)
	step = func(arg any) {
		fired++
		if fired < 1000 {
			s.AtCall(s.Now().Add(time.Millisecond), step, nil)
		}
	}
	s.AtCall(Time(0), step, nil)
	s.Run(0)
	if fired != 1000 {
		t.Fatalf("fired = %d", fired)
	}
	if len(s.free) != 1 {
		t.Fatalf("free list has %d timers, want 1 recycled", len(s.free))
	}
	// A burst reuses the free list before growing the slab.
	for i := 0; i < 10; i++ {
		s.AtCall(s.Now().Add(time.Millisecond), count, nil)
	}
	s.Run(0)
	if fired != 1010 {
		t.Fatalf("burst fired = %d", fired)
	}
	if len(s.free) != 10 {
		t.Fatalf("free list has %d timers after burst, want 10", len(s.free))
	}
}

func TestHeapStressAgainstReferenceOrder(t *testing.T) {
	// Pseudo-random interleaved schedule; execution must sort stably
	// by (time, scheduling order).
	s := NewScheduler()
	type ev struct {
		at  Time
		seq int
	}
	var want []ev
	var got []ev
	seed := uint64(0x9e3779b97f4a7c15)
	seq := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		for i := 0; i < 40; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			at := s.Now().Add(time.Duration(seed % 97))
			e := ev{at: at, seq: seq}
			seq++
			want = append(want, e)
			if seed%3 == 0 {
				s.AtCall(at, func(arg any) { got = append(got, arg.(ev)) }, e)
			} else {
				s.At(at, func() { got = append(got, e) })
			}
		}
	}
	schedule(0)
	s.After(time.Duration(200), func() { schedule(1) })
	s.Run(0)
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	// got must be sorted by (at, seq).
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
			t.Fatalf("events out of order at %d: %+v then %+v", i, a, b)
		}
	}
}
