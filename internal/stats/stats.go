// Package stats provides the small set of statistics used by the
// survivability experiments: running moments, mean absolute deviation
// (the y-axis of the paper's Figure 3), confidence intervals for
// Bernoulli estimators, and simple series summaries.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// MeanAbsDeviation returns the mean of |a[i]-b[i]| over paired series.
// This is the convergence metric of the paper's Figure 3: the mean
// absolute difference between simulated and analytic P[Success] over
// all node counts for a fixed failure count.
func MeanAbsDeviation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a)), nil
}

// MaxAbsDeviation returns max |a[i]-b[i]|.
func MaxAbsDeviation(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: series length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Running accumulates streaming moments using Welford's algorithm,
// which stays numerically stable over very long runs.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 if no observations).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observation (0 if none).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if none).
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Merge folds another accumulator into r (parallel reduction), using
// the Chan et al. pairwise update.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.mean += delta * float64(o.n) / float64(n)
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// BernoulliCI returns the half-width of a normal-approximation
// confidence interval for a proportion estimated from k successes out
// of n trials, at the given z score (1.96 ≈ 95%).
func BernoulliCI(k, n int64, z float64) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	p := float64(k) / float64(n)
	return z * math.Sqrt(p*(1-p)/float64(n))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram counts observations into nbins equal-width bins spanning
// [lo, hi). Values outside the range are clamped into the end bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram over [lo, hi) with nbins bins.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || !(hi > lo) {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
