package stats

import (
	"math"
	"testing"
	"testing/quick"

	"drsnet/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v; want 2.5, nil", m, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMeanAbsDeviation(t *testing.T) {
	d, err := MeanAbsDeviation([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil || !almostEqual(d, 1, 1e-12) {
		t.Fatalf("MAD = %v, %v; want 1", d, err)
	}
	if _, err := MeanAbsDeviation([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not reported")
	}
	if _, err := MeanAbsDeviation(nil, nil); err != ErrEmpty {
		t.Fatal("empty series not reported")
	}
}

func TestMeanAbsDeviationIdenticalSeriesIsZero(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		d, err := MeanAbsDeviation(xs, xs)
		return err == nil && d == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDeviation(t *testing.T) {
	d, err := MaxAbsDeviation([]float64{1, 5, 3}, []float64{2, 2, 1})
	if err != nil || d != 3 {
		t.Fatalf("MaxAbsDeviation = %v, %v; want 3", d, err)
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	var run Running
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		run.Add(xs[i])
	}
	mean, _ := Mean(xs)
	if !almostEqual(run.Mean(), mean, 1e-9) {
		t.Fatalf("running mean %v != direct %v", run.Mean(), mean)
	}
	// Direct two-pass variance.
	sq := 0.0
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	direct := sq / float64(len(xs)-1)
	if !almostEqual(run.Variance(), direct, 1e-6) {
		t.Fatalf("running variance %v != direct %v", run.Variance(), direct)
	}
	if run.N() != 1000 {
		t.Fatalf("N = %d", run.N())
	}
}

func TestRunningMinMax(t *testing.T) {
	var run Running
	for _, x := range []float64{3, -2, 9, 0} {
		run.Add(x)
	}
	if run.Min() != -2 || run.Max() != 9 {
		t.Fatalf("min/max = %v/%v", run.Min(), run.Max())
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	r := rng.New(2)
	var whole, a, b Running
	for i := 0; i < 500; i++ {
		x := r.Float64() * 100
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-6) {
		t.Fatalf("merged variance %v != %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestBernoulliCI(t *testing.T) {
	if ci := BernoulliCI(50, 100, 1.96); !almostEqual(ci, 1.96*math.Sqrt(0.25/100), 1e-12) {
		t.Fatalf("CI = %v", ci)
	}
	if ci := BernoulliCI(0, 0, 1.96); !math.IsInf(ci, 1) {
		t.Fatalf("CI with n=0 = %v, want +Inf", ci)
	}
	// All successes => zero width under normal approximation.
	if ci := BernoulliCI(10, 10, 1.96); ci != 0 {
		t.Fatalf("CI = %v, want 0", ci)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil || !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", tc.q, got, err, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("empty quantile not reported")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range q not reported")
	}
	one, err := Quantile([]float64{42}, 0.7)
	if err != nil || one != 42 {
		t.Fatalf("single-element quantile = %v, %v", one, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// -3 clamps to bin 0, 42 clamps to bin 4.
	want := []int64{3, 1, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if !almostEqual(h.Fraction(0), 3.0/7, 1e-12) {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(1,1,3) did not panic")
		}
	}()
	NewHistogram(1, 1, 3)
}
