package survival

import (
	"fmt"
	"math/big"

	"drsnet/internal/parallel"
)

// AllPairsSuccessCount returns the number of f-subsets of the 2N+2
// components under which EVERY pair of servers can still communicate —
// full cluster survivability, a strictly stronger criterion than the
// designated-pair model of Equation 1. (The paper evaluates the pair
// model; this closed form is this reproduction's extension, validated
// against brute-force enumeration.)
//
// Derivation (dual rail). Condition on the back planes:
//
//   - Both up: the f failures all hit NICs. Assign each failed NIC to
//     its node: a node may lose its rail-1 NIC (attached to rail 0
//     only), its rail-0 NIC (rail 1 only), or both (detached — the
//     cluster fails). With no detached nodes the failed NICs sit on f
//     distinct nodes with a binary rail choice each: C(N,f)·2^f
//     assignments. All pairs communicate unless both single-rail
//     groups are nonempty while no intact node bridges them, which
//     requires f = N; the 2^N − 2 mixed assignments are then
//     unsurvivable.
//   - Exactly one back plane down (two ways): all communication rides
//     the surviving rail, so every node's NIC there must be intact:
//     the remaining f−1 failures must all hit the dead rail's N NICs —
//     C(N, f−1) subsets.
//   - Both down: no communication at all.
//
// Counts are memoized (see cache.go); the returned big.Int is a fresh
// copy the caller may mutate freely.
func AllPairsSuccessCount(n, f int) *big.Int {
	checkArgs(n, f)
	return new(big.Int).Set(cache.allPairsCount(n, f))
}

// allPairsSuccessCountRaw computes the count from scratch — the
// uncached closed form behind AllPairsSuccessCount.
func allPairsSuccessCountRaw(n, f int) *big.Int {
	checkArgs(n, f)
	total := new(big.Int)

	// Both back planes up.
	if f <= n {
		bothUp := Binomial(n, f)
		bothUp.Lsh(bothUp, uint(f)) // × 2^f rail assignments
		if f == n && n >= 1 {
			// Remove assignments with both rails represented: all
			// 2^N except the two monochrome ones.
			mixed := new(big.Int).Lsh(big.NewInt(1), uint(n))
			mixed.Sub(mixed, big.NewInt(2))
			bothUp.Sub(bothUp, mixed)
		}
		total.Add(total, bothUp)
	}

	// Exactly one back plane down (×2 by symmetry).
	if f >= 1 && f-1 <= n {
		oneDown := Binomial(n, f-1)
		oneDown.Lsh(oneDown, 1) // ×2
		total.Add(total, oneDown)
	}

	return total
}

// AllPairsPSuccess returns the probability that every pair of servers
// can communicate under exactly f uniform component failures.
func AllPairsPSuccess(n, f int) *big.Rat {
	den := TotalCount(n, f)
	if den.Sign() == 0 {
		panic(fmt.Sprintf("survival: no scenarios for n=%d f=%d", n, f))
	}
	return new(big.Rat).SetFrac(AllPairsSuccessCount(n, f), den)
}

// AllPairsPSuccessFloat is AllPairsPSuccess as a float64.
func AllPairsPSuccessFloat(n, f int) float64 {
	v, _ := AllPairsPSuccess(n, f).Float64()
	return v
}

// AllPairsSeries returns AllPairsPSuccessFloat(n, f) for
// n = nMin..nMax.
func AllPairsSeries(f, nMin, nMax int) []float64 {
	return AllPairsSeriesWorkers(f, nMin, nMax, 1)
}

// AllPairsSeriesWorkers is AllPairsSeries computed by the parallel
// sweep engine with the given worker count (0 = GOMAXPROCS); the
// result is bit-identical for every worker count.
func AllPairsSeriesWorkers(f, nMin, nMax, workers int) []float64 {
	if nMin < 2 || nMax < nMin {
		panic(fmt.Sprintf("survival: bad series range [%d,%d]", nMin, nMax))
	}
	out := make([]float64, nMax-nMin+1)
	_ = parallel.ForEach(nil, workers, len(out), func(i int) error {
		out[i] = AllPairsPSuccessFloat(nMin+i, f)
		return nil
	})
	return out
}
