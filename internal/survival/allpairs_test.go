package survival

import (
	"math/big"
	"testing"

	"drsnet/internal/topology"
)

func TestAllPairsClosedFormMatchesEnumeration(t *testing.T) {
	for n := 2; n <= 7; n++ {
		m := 2*n + 2
		for f := 0; f <= m; f++ {
			succ, tot, err := EnumerateAllPairs(topology.Dual(n), f)
			if err != nil {
				t.Fatal(err)
			}
			if want := TotalCount(n, f); tot.Cmp(want) != 0 {
				t.Fatalf("n=%d f=%d: enumerated %v scenarios, want %v", n, f, tot, want)
			}
			if got := AllPairsSuccessCount(n, f); got.Cmp(succ) != 0 {
				t.Errorf("n=%d f=%d: closed form %v, enumeration %v", n, f, got, succ)
			}
		}
	}
}

func TestAllPairsHandValues(t *testing.T) {
	// N=2, f=2: six of the C(6,2)=15 scenarios keep the pair talking
	// (worked by hand in the derivation comment).
	if got := AllPairsSuccessCount(2, 2); got.Int64() != 6 {
		t.Fatalf("AllPairsSuccessCount(2,2) = %v, want 6", got)
	}
	// f=0 is always survivable; f=1 too (one NIC or one back plane
	// always leaves the other rail fully intact).
	for n := 2; n <= 20; n++ {
		if p := AllPairsPSuccessFloat(n, 0); p != 1 {
			t.Fatalf("AllPairs P(%d,0) = %v", n, p)
		}
		if p := AllPairsPSuccessFloat(n, 1); p != 1 {
			t.Fatalf("AllPairs P(%d,1) = %v", n, p)
		}
	}
}

func TestAllPairsNeverExceedsPair(t *testing.T) {
	for n := 2; n <= 30; n += 3 {
		for f := 0; f <= 10 && f <= 2*n+2; f++ {
			all := AllPairsPSuccess(n, f)
			pair := PSuccess(n, f)
			if all.Cmp(pair) > 0 {
				t.Fatalf("n=%d f=%d: all-pairs %s exceeds pair %s",
					n, f, all.FloatString(6), pair.FloatString(6))
			}
		}
	}
}

func TestAllPairsConvergesToOne(t *testing.T) {
	// Full-cluster survivability also converges to 1 for fixed f, but
	// only at O(f/N): the dominant failing scenarios are "one back
	// plane down plus any surviving-rail NIC", and with a back plane
	// gone there is zero redundancy left. Verify monotonicity and the
	// 1/N decay (failure probability halves when N doubles).
	for f := 2; f <= 6; f++ {
		prev := new(big.Rat)
		for n := f + 1; n <= 200; n += 7 {
			cur := AllPairsPSuccess(n, f)
			if cur.Cmp(prev) < 0 {
				t.Fatalf("all-pairs not monotone at n=%d f=%d", n, f)
			}
			prev = cur
		}
		if p := AllPairsPSuccessFloat(5000, f); p < 0.995 {
			t.Fatalf("AllPairs P(5000,%d) = %v, not converging", f, p)
		}
		fail1 := 1 - AllPairsPSuccessFloat(2000, f)
		fail2 := 1 - AllPairsPSuccessFloat(4000, f)
		if ratio := fail1 / fail2; ratio < 1.8 || ratio > 2.2 {
			t.Fatalf("f=%d: all-pairs failure ratio across N doubling = %v, want ~2", f, ratio)
		}
	}
}

func TestAllPairsSeries(t *testing.T) {
	s := AllPairsSeries(3, 4, 20)
	if len(s) != 17 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] != AllPairsPSuccessFloat(4, 3) {
		t.Fatal("series misaligned")
	}
}

func TestAllPairsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n too small": func() { AllPairsSuccessCount(1, 1) },
		"f too large": func() { AllPairsSuccessCount(3, 99) },
		"bad series":  func() { AllPairsSeries(2, 9, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkAllPairsPSuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AllPairsPSuccess(63, 10)
	}
}
