package survival

import (
	"math/big"
	"sync"
)

// The sweeps that drive this package — Figure 2 curves, threshold
// scans, availability mixtures, the all-pairs extension — evaluate the
// same binomials and the same F(N, f) counts thousands of times (every
// IID mixture alone touches every f for a given N). All of that
// arithmetic is pure, so it is memoized here once and shared by every
// goroutine of the parallel sweep engine.
//
// Cache discipline: cached *big.Int values are immutable after
// insertion and are NEVER handed to callers directly — the public
// functions return fresh copies, because the existing call sites
// mutate their results in place (Lsh, Sub, ...). A copy is a handful
// of machine words; the recomputation it replaces is a chain of
// big-integer multiplications.

// maxCachedRow bounds the Pascal rows kept resident. Sweeps touch
// n ≤ 2N+2 with N a few hundred at most; anything beyond this bound
// (nothing in the repository today) is computed directly instead of
// growing the cache without limit.
const maxCachedRow = 4096

type pairKey struct{ n, f int }

type combCache struct {
	mu       sync.RWMutex
	rows     map[int][]*big.Int // rows[n][k] = C(n,k); immutable once stored
	succ     map[pairKey]*big.Int
	allPairs map[pairKey]*big.Int
}

var cache = &combCache{
	rows:     make(map[int][]*big.Int),
	succ:     make(map[pairKey]*big.Int),
	allPairs: make(map[pairKey]*big.Int),
}

// ResetCaches drops every memoized binomial and success count. It
// exists for tests and benchmarks that need to measure or compare the
// cold path; production sweeps never need it.
func ResetCaches() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.rows = make(map[int][]*big.Int)
	cache.succ = make(map[pairKey]*big.Int)
	cache.allPairs = make(map[pairKey]*big.Int)
}

// pascalRow returns the cached row [C(n,0) .. C(n,n)]. The returned
// slice and its elements are shared and must not be mutated.
func (c *combCache) pascalRow(n int) []*big.Int {
	c.mu.RLock()
	row, ok := c.rows[n]
	c.mu.RUnlock()
	if ok {
		return row
	}
	// Compute outside the lock: racing goroutines may duplicate the
	// work, but the first row stored wins and nothing blocks on a long
	// multiplicative chain.
	row = computePascalRow(n)
	c.mu.Lock()
	if prev, ok := c.rows[n]; ok {
		row = prev
	} else {
		c.rows[n] = row
	}
	c.mu.Unlock()
	return row
}

// computePascalRow builds row n multiplicatively:
// C(n,k) = C(n,k-1) · (n-k+1) / k, exact at every step.
func computePascalRow(n int) []*big.Int {
	row := make([]*big.Int, n+1)
	row[0] = big.NewInt(1)
	for k := 1; k <= n/2; k++ {
		v := new(big.Int).Mul(row[k-1], big.NewInt(int64(n-k+1)))
		v.Quo(v, big.NewInt(int64(k)))
		row[k] = v
	}
	// Mirror symmetry fills the upper half; the shared pointers are
	// fine because rows are immutable.
	for k := n/2 + 1; k <= n; k++ {
		row[k] = row[n-k]
	}
	return row
}

// binomialCached returns a fresh copy of C(n,k) through the row cache,
// or computes it directly when n exceeds the cache bound.
func binomialCached(n, k int) *big.Int {
	if n > maxCachedRow {
		return new(big.Int).Binomial(int64(n), int64(k))
	}
	return new(big.Int).Set(cache.pascalRow(n)[k])
}

// successCount returns the memoized F(N, f), as a shared immutable
// pointer. Callers outside this file go through SuccessCount, which
// copies.
func (c *combCache) successCount(n, f int) *big.Int {
	key := pairKey{n, f}
	c.mu.RLock()
	v, ok := c.succ[key]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = successCountRaw(n, f)
	c.mu.Lock()
	if prev, ok := c.succ[key]; ok {
		v = prev
	} else {
		c.succ[key] = v
	}
	c.mu.Unlock()
	return v
}

// allPairsCount is the all-pairs analogue of successCount.
func (c *combCache) allPairsCount(n, f int) *big.Int {
	key := pairKey{n, f}
	c.mu.RLock()
	v, ok := c.allPairs[key]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = allPairsSuccessCountRaw(n, f)
	c.mu.Lock()
	if prev, ok := c.allPairs[key]; ok {
		v = prev
	} else {
		c.allPairs[key] = v
	}
	c.mu.Unlock()
	return v
}
