package survival

import (
	"math/big"
	"sync"
	"testing"
	"testing/quick"

	"drsnet/internal/topology"
)

// TestClosedFormEnumerationMemoAgree is the satellite property test:
// for every N ≤ 10, f ≤ 5, the uncached closed form, the memoized
// closed form and exhaustive enumeration of all C(2N+2, f) scenarios
// must produce the same count.
func TestClosedFormEnumerationMemoAgree(t *testing.T) {
	ResetCaches()
	for n := 2; n <= 10; n++ {
		for f := 0; f <= 5; f++ {
			raw := successCountRaw(n, f)
			memo1 := SuccessCount(n, f) // cold: populates the cache
			memo2 := SuccessCount(n, f) // warm: served from the cache
			enum, _, err := EnumeratePair(topology.Dual(n), f, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if raw.Cmp(enum) != 0 {
				t.Errorf("n=%d f=%d: raw %v != enumeration %v", n, f, raw, enum)
			}
			if memo1.Cmp(raw) != 0 || memo2.Cmp(raw) != 0 {
				t.Errorf("n=%d f=%d: memo %v/%v != raw %v", n, f, memo1, memo2, raw)
			}
		}
	}
}

// TestAllPairsMemoAgainstRawAndEnumeration is the same property for
// the all-pairs extension (smaller range: enumeration is exponential).
func TestAllPairsMemoAgainstRawAndEnumeration(t *testing.T) {
	ResetCaches()
	for n := 2; n <= 6; n++ {
		for f := 0; f <= 5; f++ {
			raw := allPairsSuccessCountRaw(n, f)
			memo := AllPairsSuccessCount(n, f)
			enum, _, err := EnumerateAllPairs(topology.Dual(n), f)
			if err != nil {
				t.Fatal(err)
			}
			if raw.Cmp(enum) != 0 || memo.Cmp(raw) != 0 {
				t.Errorf("n=%d f=%d: raw %v memo %v enumeration %v", n, f, raw, memo, enum)
			}
		}
	}
}

// TestCachedRatsMatchFreshInstance asserts the cached path returns the
// same exact *big.Rat values as a fresh survival "instance" (the
// package after ResetCaches): warm-cache PSuccess must be
// rational-identical — numerator and denominator — to the cold path.
func TestCachedRatsMatchFreshInstance(t *testing.T) {
	ResetCaches()
	fresh := make(map[pairKey]*big.Rat)
	for n := 2; n <= 10; n++ {
		for f := 0; f <= 5; f++ {
			fresh[pairKey{n, f}] = PSuccess(n, f)
		}
	}
	// Second pass: everything is served from the memo now.
	for n := 2; n <= 10; n++ {
		for f := 0; f <= 5; f++ {
			cached := PSuccess(n, f)
			want := fresh[pairKey{n, f}]
			if cached.Cmp(want) != 0 {
				t.Fatalf("P(%d,%d): cached %s != fresh %s", n, f, cached.RatString(), want.RatString())
			}
			// Exact representation, not just numeric equality.
			if cached.RatString() != want.RatString() {
				t.Fatalf("P(%d,%d): cached representation %s != fresh %s",
					n, f, cached.RatString(), want.RatString())
			}
		}
	}
}

// TestPascalRowsMatchStdlib cross-checks the multiplicative row
// construction against math/big's own Binomial.
func TestPascalRowsMatchStdlib(t *testing.T) {
	err := quick.Check(func(n16 uint16, k16 uint16) bool {
		n := int(n16 % 300)
		k := int(k16) % (n + 1)
		return Binomial(n, k).Cmp(new(big.Int).Binomial(int64(n), int64(k))) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestCallersCannotCorruptCache mutates returned values in place and
// verifies later reads are unaffected — the copy-out discipline that
// makes the cache safe against the package's own Lsh/Sub call sites.
func TestCallersCannotCorruptCache(t *testing.T) {
	ResetCaches()
	b := Binomial(20, 10)
	want := new(big.Int).Set(b)
	b.Lsh(b, 13) // caller scribbles on its copy
	if got := Binomial(20, 10); got.Cmp(want) != 0 {
		t.Fatalf("Binomial(20,10) corrupted: %v, want %v", got, want)
	}
	s := SuccessCount(8, 3)
	wantS := new(big.Int).Set(s)
	s.Sub(s, big.NewInt(99))
	if got := SuccessCount(8, 3); got.Cmp(wantS) != 0 {
		t.Fatalf("SuccessCount(8,3) corrupted: %v, want %v", got, wantS)
	}
	a := AllPairsSuccessCount(8, 3)
	wantA := new(big.Int).Set(a)
	a.SetInt64(-1)
	if got := AllPairsSuccessCount(8, 3); got.Cmp(wantA) != 0 {
		t.Fatalf("AllPairsSuccessCount(8,3) corrupted: %v, want %v", got, wantA)
	}
}

// TestCacheConcurrentReadersAgree hammers the cold cache from many
// goroutines; under -race this is the regression test for the memo's
// locking, and every goroutine must observe identical exact values.
func TestCacheConcurrentReadersAgree(t *testing.T) {
	ResetCaches()
	const goroutines = 16
	results := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var vals []string
			for n := 2; n <= 24; n++ {
				for f := 0; f <= 6; f++ {
					vals = append(vals, PSuccess(n, f).RatString())
					vals = append(vals, AllPairsPSuccess(n, f).RatString())
				}
			}
			results[g] = vals
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d diverges at value %d: %s != %s",
					g, i, results[g][i], results[0][i])
			}
		}
	}
}

// TestSeriesWorkersBitIdentical: the survival-level sweeps must be
// bit-identical across worker counts.
func TestSeriesWorkersBitIdentical(t *testing.T) {
	ref := SeriesWorkers(4, 5, 63, 1)
	refAll := AllPairsSeriesWorkers(4, 5, 63, 1)
	for _, workers := range []int{2, 4, 8} {
		got := SeriesWorkers(4, 5, 63, workers)
		gotAll := AllPairsSeriesWorkers(4, 5, 63, workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: Series diverges at %d: %v != %v", workers, i, got[i], ref[i])
			}
			if gotAll[i] != refAll[i] {
				t.Fatalf("workers=%d: AllPairsSeries diverges at %d", workers, i)
			}
		}
	}
}

// BenchmarkPSuccessMemoized measures the warm-cache path.
func BenchmarkPSuccessMemoized(b *testing.B) {
	PSuccess(63, 10) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PSuccess(63, 10)
	}
}

// BenchmarkPSuccessCold measures the uncached closed form.
func BenchmarkPSuccessCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		successCountRaw(63, 10)
	}
}
