package survival

import (
	"fmt"
	"math/big"

	"drsnet/internal/conn"
	"drsnet/internal/topology"
)

// EnumeratePair counts, by brute force, the failure scenarios of size
// f under which nodes a and b can communicate in cluster c. It visits
// every one of the C(|components|, f) subsets, so it is exponential —
// use it as the gold standard for validating the closed form and the
// Monte Carlo estimator on small systems.
func EnumeratePair(c topology.Cluster, f, a, b int) (success, total *big.Int, err error) {
	e, err := conn.NewEvaluator(c)
	if err != nil {
		return nil, nil, err
	}
	m := c.Components()
	if f < 0 || f > m {
		return nil, nil, fmt.Errorf("survival: f=%d outside [0,%d]", f, m)
	}
	succ := 0
	tot := 0
	failed := make([]topology.Component, f)
	forEachSubset(m, f, func(idx []int) {
		for i, v := range idx {
			failed[i] = topology.Component(v)
		}
		tot++
		if e.PairConnected(failed[:len(idx)], a, b) {
			succ++
		}
	})
	return big.NewInt(int64(succ)), big.NewInt(int64(tot)), nil
}

// EnumerateAllPairs counts the failure scenarios of size f under which
// EVERY pair of nodes in cluster c can communicate (full cluster
// survivability, a strictly stronger criterion than the paper's
// designated-pair model).
func EnumerateAllPairs(c topology.Cluster, f int) (success, total *big.Int, err error) {
	e, err := conn.NewEvaluator(c)
	if err != nil {
		return nil, nil, err
	}
	m := c.Components()
	if f < 0 || f > m {
		return nil, nil, fmt.Errorf("survival: f=%d outside [0,%d]", f, m)
	}
	succ := 0
	tot := 0
	failed := make([]topology.Component, f)
	forEachSubset(m, f, func(idx []int) {
		for i, v := range idx {
			failed[i] = topology.Component(v)
		}
		tot++
		if e.AllConnected(failed[:len(idx)]) {
			succ++
		}
	})
	return big.NewInt(int64(succ)), big.NewInt(int64(tot)), nil
}

// forEachSubset invokes fn once for every k-subset of [0, n), passing
// the chosen indices in ascending order. The slice passed to fn is
// reused between calls.
func forEachSubset(n, k int, fn func(idx []int)) {
	if k == 0 {
		fn(nil)
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance to the next combination in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Threshold returns the smallest N in [nMin, nMax] for which
// P[Success](N, f) exceeds target, using exact rational comparison.
// It returns an error if no N in the range qualifies.
//
// The paper's stated thresholds for target 0.99 are N=18 (f=2),
// N=32 (f=3) and N=45 (f=4); tests assert this function reproduces
// them.
func Threshold(f int, target *big.Rat, nMin, nMax int) (int, error) {
	if nMin < 2 {
		nMin = 2
	}
	for n := nMin; n <= nMax; n++ {
		if 2*n+2 < f {
			continue // not enough components to fail
		}
		if PSuccess(n, f).Cmp(target) > 0 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("survival: P[Success] does not exceed %s for f=%d with N ≤ %d",
		target.FloatString(4), f, nMax)
}

// ThresholdFloat is Threshold with a float64 target, converted exactly.
func ThresholdFloat(f int, target float64, nMin, nMax int) (int, error) {
	r := new(big.Rat)
	if r.SetFloat64(target) == nil {
		return 0, fmt.Errorf("survival: target %v is not finite", target)
	}
	return Threshold(f, r, nMin, nMax)
}
