// Package survival implements the paper's network survivability model
// (Equation 1): for a cluster of N servers with two NICs each and two
// non-meshed back planes — 2N+2 failure-prone components — and exactly
// f failed components chosen uniformly at random,
//
//	P[Success] = F(N, f) / C(2N+2, f)
//
// where F(N, f) counts the failure scenarios under which a designated
// pair of servers can still communicate, directly on either network or
// through a relay server that the DRS discovers.
//
// The combinatorial expression printed in the paper is typographically
// damaged, so this package re-derives F(N, f) from the system
// definition and validates the reconstruction three ways: a closed
// form evaluated in exact big-integer arithmetic, brute-force
// enumeration of every C(2N+2, f) scenario, and Monte Carlo
// simulation (package montecarlo). All three agree, and the closed
// form reproduces the paper's stated thresholds exactly: P[Success]
// first exceeds 0.99 at N=18 (f=2), N=32 (f=3) and N=45 (f=4).
package survival

import (
	"fmt"
	"math/big"

	"drsnet/internal/parallel"
)

// Binomial returns C(n, k) as a big.Int. It returns zero for k < 0 or
// k > n, which keeps the counting sums below uniform. Values are
// served from a shared Pascal-row cache (see cache.go); the returned
// big.Int is a fresh copy the caller may mutate freely.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n || n < 0 {
		return new(big.Int)
	}
	return binomialCached(n, k)
}

// hitAllPairs returns the number of s-subsets of the 2p NICs of p
// relay nodes (one NIC per rail per node) that hit every node — i.e.
// leave no relay with both NICs intact. Choosing j = s - p nodes to
// lose both NICs and one of two NICs on each of the remaining p - j
// nodes gives C(p, s-p) · 2^(2p-s); the count is zero unless
// p ≤ s ≤ 2p (with the convention that the empty subset hits all of
// zero nodes).
func hitAllPairs(p, s int) *big.Int {
	if p == 0 {
		if s == 0 {
			return big.NewInt(1)
		}
		return new(big.Int)
	}
	if s < p || s > 2*p {
		return new(big.Int)
	}
	out := Binomial(p, s-p)
	out.Lsh(out, uint(2*p-s))
	return out
}

// patternOutcome classifies one assignment of up/down to the six
// pair-local components (two back planes plus the designated pair's
// four NICs).
type patternOutcome int

const (
	outcomeFail    patternOutcome = iota // pair cannot communicate regardless of relays
	outcomeSuccess                       // pair communicates regardless of relays
	outcomeRelay                         // pair communicates iff some relay keeps both NICs
)

// classifyPattern evaluates the pair-local pattern. Bit assignments:
// 0=backplane0, 1=backplane1, 2=nicA0, 3=nicA1, 4=nicB0, 5=nicB1;
// a set bit means the component failed.
func classifyPattern(bits uint) patternOutcome {
	bpf0 := bits&(1<<0) != 0
	bpf1 := bits&(1<<1) != 0
	a0 := !bpf0 && bits&(1<<2) == 0 // A attached to rail 0
	a1 := !bpf1 && bits&(1<<3) == 0
	b0 := !bpf0 && bits&(1<<4) == 0
	b1 := !bpf1 && bits&(1<<5) == 0
	if (!a0 && !a1) || (!b0 && !b1) {
		return outcomeFail
	}
	if (a0 && b0) || (a1 && b1) {
		return outcomeSuccess
	}
	// Masks are disjoint and nonempty: A is attached to exactly one
	// rail, B to the other, and both back planes are up. Only a relay
	// with both NICs intact can bridge them.
	return outcomeRelay
}

// SuccessCount returns F(N, f): the number of f-subsets of the 2N+2
// components under which the designated pair can still communicate.
// It panics if n < 2 or f is outside [0, 2N+2]. Counts are memoized
// (see cache.go); the returned big.Int is a fresh copy the caller may
// mutate freely.
func SuccessCount(n, f int) *big.Int {
	checkArgs(n, f)
	return new(big.Int).Set(cache.successCount(n, f))
}

// checkArgs enforces the model's domain: n ≥ 2 and 0 ≤ f ≤ 2n+2.
func checkArgs(n, f int) {
	if n < 2 {
		panic(fmt.Sprintf("survival: need n >= 2, have %d", n))
	}
	if m := 2*n + 2; f < 0 || f > m {
		panic(fmt.Sprintf("survival: f=%d outside [0,%d]", f, m))
	}
}

// successCountRaw computes F(N, f) from scratch — the uncached closed
// form behind SuccessCount, kept separate so tests can pit the memo
// against a fresh evaluation.
func successCountRaw(n, f int) *big.Int {
	checkArgs(n, f)
	relayNICs := 2*n - 4 // NICs on the N-2 non-designated nodes
	total := new(big.Int)
	for bits := uint(0); bits < 64; bits++ {
		k := popcount6(bits)
		rem := f - k
		if rem < 0 || rem > relayNICs {
			continue
		}
		switch classifyPattern(bits) {
		case outcomeFail:
			// contributes nothing
		case outcomeSuccess:
			total.Add(total, Binomial(relayNICs, rem))
		case outcomeRelay:
			// Success unless the remaining failures hit every relay.
			ways := Binomial(relayNICs, rem)
			ways.Sub(ways, hitAllPairs(n-2, rem))
			total.Add(total, ways)
		}
	}
	return total
}

func popcount6(bits uint) int {
	n := 0
	for b := bits; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TotalCount returns C(2N+2, f), the number of equally likely failure
// scenarios (the denominator of Equation 1).
func TotalCount(n, f int) *big.Int {
	return Binomial(2*n+2, f)
}

// PSuccess returns Equation 1 exactly: F(N,f) / C(2N+2, f).
// It panics under the same conditions as SuccessCount.
func PSuccess(n, f int) *big.Rat {
	num := SuccessCount(n, f)
	den := TotalCount(n, f)
	if den.Sign() == 0 {
		panic(fmt.Sprintf("survival: no scenarios for n=%d f=%d", n, f))
	}
	return new(big.Rat).SetFrac(num, den)
}

// PSuccessFloat returns Equation 1 as a float64.
func PSuccessFloat(n, f int) float64 {
	v, _ := PSuccess(n, f).Float64()
	return v
}

// FailureCount returns C(2N+2, f) − F(N, f): the number of scenarios
// that sever the designated pair.
func FailureCount(n, f int) *big.Int {
	return new(big.Int).Sub(TotalCount(n, f), SuccessCount(n, f))
}

// Series returns PSuccessFloat(n, f) for n = nMin..nMax inclusive —
// one curve of the paper's Figure 2.
func Series(f, nMin, nMax int) []float64 {
	return SeriesWorkers(f, nMin, nMax, 1)
}

// SeriesWorkers is Series computed by the parallel sweep engine with
// the given worker count (0 = GOMAXPROCS). Every point is an
// independent exact evaluation written into its own slot, so the
// result is bit-identical for every worker count.
func SeriesWorkers(f, nMin, nMax, workers int) []float64 {
	if nMin < 2 || nMax < nMin {
		panic(fmt.Sprintf("survival: bad series range [%d,%d]", nMin, nMax))
	}
	out := make([]float64, nMax-nMin+1)
	_ = parallel.ForEach(nil, workers, len(out), func(i int) error {
		out[i] = PSuccessFloat(nMin+i, f)
		return nil
	})
	return out
}

// MixtureSuccess returns the unconditional success probability when
// the number of simultaneous failures is not fixed but geometric: the
// paper observes that if each additional concurrent failure is a
// factor q less likely (P[f failures] ∝ q^f), multi-failure scenarios
// decay exponentially. The mixture is truncated at maxF and
// renormalized; f=0 and f=1 scenarios always succeed (a single
// component failure can never sever a dual-rail pair when N ≥ 2...
// except a lone failure of one of A's NICs still leaves the other
// rail, so P(n,0)=P(n,1)=1, which the model confirms).
func MixtureSuccess(n int, q float64, maxF int) float64 {
	if q < 0 || q >= 1 {
		panic(fmt.Sprintf("survival: mixture weight q=%v outside [0,1)", q))
	}
	if maxF < 0 {
		panic("survival: negative maxF")
	}
	m := 2*n + 2
	if maxF > m {
		maxF = m
	}
	wsum := 0.0
	acc := 0.0
	w := 1.0
	for f := 0; f <= maxF; f++ {
		acc += w * PSuccessFloat(n, f)
		wsum += w
		w *= q
	}
	return acc / wsum
}
