package survival

import (
	"math/big"
	"testing"
	"testing/quick"

	"drsnet/internal/topology"
)

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {38, 2, 703},
		{5, 6, 0}, {5, -1, 0}, {-1, 0, 0},
	}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); got.Int64() != tc.want {
			t.Errorf("Binomial(%d,%d) = %v, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	err := quick.Check(func(n8, k8 uint8) bool {
		n := int(n8%40) + 1
		k := int(k8) % (n + 1)
		// C(n,k) = C(n-1,k-1) + C(n-1,k)
		lhs := Binomial(n, k)
		rhs := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHitAllPairs(t *testing.T) {
	// p=2 relay nodes (4 NICs). Subsets of size 2 hitting both nodes:
	// one NIC from each node: 2*2 = 4.
	if got := hitAllPairs(2, 2); got.Int64() != 4 {
		t.Fatalf("hitAllPairs(2,2) = %v, want 4", got)
	}
	// size 3: one node loses both, the other loses one: C(2,1)*2 = 4.
	if got := hitAllPairs(2, 3); got.Int64() != 4 {
		t.Fatalf("hitAllPairs(2,3) = %v, want 4", got)
	}
	// size 4: everything fails: 1 way.
	if got := hitAllPairs(2, 4); got.Int64() != 1 {
		t.Fatalf("hitAllPairs(2,4) = %v, want 1", got)
	}
	// too few to hit every node
	if got := hitAllPairs(3, 2); got.Sign() != 0 {
		t.Fatalf("hitAllPairs(3,2) = %v, want 0", got)
	}
	// empty relay pool
	if got := hitAllPairs(0, 0); got.Int64() != 1 {
		t.Fatalf("hitAllPairs(0,0) = %v, want 1", got)
	}
	if got := hitAllPairs(0, 1); got.Sign() != 0 {
		t.Fatalf("hitAllPairs(0,1) = %v, want 0", got)
	}
}

func TestHitAllPairsByEnumeration(t *testing.T) {
	// Exhaustively verify against direct subset enumeration for small p.
	for p := 1; p <= 4; p++ {
		for s := 0; s <= 2*p; s++ {
			count := 0
			forEachSubset(2*p, s, func(idx []int) {
				nodeHit := make([]bool, p)
				for _, v := range idx {
					nodeHit[v/2] = true
				}
				all := true
				for _, h := range nodeHit {
					all = all && h
				}
				if all {
					count++
				}
			})
			if got := hitAllPairs(p, s); got.Int64() != int64(count) {
				t.Errorf("hitAllPairs(%d,%d) = %v, enumeration says %d", p, s, got, count)
			}
		}
	}
}

func TestTrivialProbabilities(t *testing.T) {
	for n := 2; n <= 20; n++ {
		if p := PSuccessFloat(n, 0); p != 1 {
			t.Fatalf("P(%d,0) = %v, want 1", n, p)
		}
		// Any single component failure leaves the other rail intact.
		if p := PSuccessFloat(n, 1); p != 1 {
			t.Fatalf("P(%d,1) = %v, want 1", n, p)
		}
		// Killing every component certainly severs the pair.
		if p := PSuccessFloat(n, 2*n+2); p != 0 {
			t.Fatalf("P(%d,all) = %v, want 0", n, p)
		}
	}
}

func TestPaperHeadlineValues(t *testing.T) {
	// f=2 at N=18: exactly 7 of the C(38,2)=703 scenarios sever the
	// pair (both backplanes; A's NIC pair; B's NIC pair; one backplane
	// plus the opposite-rail NIC of A or of B).
	p := PSuccess(18, 2)
	want := new(big.Rat).SetFrac64(703-7, 703)
	if p.Cmp(want) != 0 {
		t.Fatalf("P(18,2) = %s, want %s", p.FloatString(6), want.FloatString(6))
	}
	if f := PSuccessFloat(18, 2); f < 0.99 {
		t.Fatalf("P(18,2) = %v, want > 0.99", f)
	}
	if f := PSuccessFloat(17, 2); f >= 0.99 {
		t.Fatalf("P(17,2) = %v, want < 0.99", f)
	}
}

func TestPaperThresholds(t *testing.T) {
	target := new(big.Rat).SetFrac64(99, 100)
	for _, tc := range []struct{ f, wantN int }{
		{2, 18}, // paper: "for f=2 the P[S] surpasses 0.99 at 18 nodes"
		{3, 32}, // paper: at 32 nodes
		{4, 45}, // paper: at 45 nodes
	} {
		n, err := Threshold(tc.f, target, 2, 100)
		if err != nil {
			t.Fatalf("Threshold(f=%d): %v", tc.f, err)
		}
		if n != tc.wantN {
			t.Errorf("Threshold(f=%d) = %d, want %d (paper)", tc.f, n, tc.wantN)
		}
	}
}

func TestThresholdNotFound(t *testing.T) {
	target := new(big.Rat).SetFrac64(99, 100)
	if _, err := Threshold(9, target, 2, 20); err == nil {
		t.Fatal("expected no threshold for f=9 below N=20")
	}
}

func TestThresholdFloat(t *testing.T) {
	n, err := ThresholdFloat(2, 0.99, 2, 100)
	if err != nil || n != 18 {
		t.Fatalf("ThresholdFloat = %d, %v; want 18", n, err)
	}
}

func TestClosedFormMatchesEnumeration(t *testing.T) {
	// The decisive validation: the closed form must equal brute-force
	// enumeration of every scenario for every small (N, f).
	for n := 2; n <= 8; n++ {
		m := 2*n + 2
		maxF := 6
		if maxF > m {
			maxF = m
		}
		for f := 0; f <= maxF; f++ {
			succ, tot, err := EnumeratePair(topology.Dual(n), f, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if want := TotalCount(n, f); tot.Cmp(want) != 0 {
				t.Fatalf("n=%d f=%d: enumerated %v scenarios, want %v", n, f, tot, want)
			}
			if got := SuccessCount(n, f); got.Cmp(succ) != 0 {
				t.Errorf("n=%d f=%d: closed form F=%v, enumeration says %v", n, f, got, succ)
			}
		}
	}
}

func TestClosedFormMatchesEnumerationHighF(t *testing.T) {
	// Deep failure counts exercise the relay-exhaustion term (f ≥ N).
	for n := 2; n <= 5; n++ {
		m := 2*n + 2
		for f := 0; f <= m; f++ {
			succ, _, err := EnumeratePair(topology.Dual(n), f, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got := SuccessCount(n, f); got.Cmp(succ) != 0 {
				t.Errorf("n=%d f=%d: closed form F=%v, enumeration says %v", n, f, got, succ)
			}
		}
	}
}

func TestPairChoiceIrrelevantBySymmetry(t *testing.T) {
	// The model designates nodes 0 and 1, but any pair must give the
	// same count by symmetry.
	c := topology.Dual(5)
	ref, _, err := EnumeratePair(c, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{0, 2}, {1, 4}, {2, 3}} {
		got, _, err := EnumeratePair(c, 3, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(ref) != 0 {
			t.Errorf("pair %v count %v differs from pair (0,1) count %v", pair, got, ref)
		}
	}
}

func TestMonotoneInN(t *testing.T) {
	// For fixed f, adding nodes only adds relays: P must not decrease.
	for f := 2; f <= 6; f++ {
		prev := PSuccess(f+1, f)
		for n := f + 2; n <= 64; n++ {
			cur := PSuccess(n, f)
			if cur.Cmp(prev) < 0 {
				t.Fatalf("P not monotone: P(%d,%d)=%s < P(%d,%d)=%s",
					n, f, cur.FloatString(8), n-1, f, prev.FloatString(8))
			}
			prev = cur
		}
	}
}

func TestMonotoneInF(t *testing.T) {
	// For fixed N, more failures cannot help.
	for n := 4; n <= 24; n += 5 {
		prev := PSuccess(n, 0)
		for f := 1; f <= 10 && f <= 2*n+2; f++ {
			cur := PSuccess(n, f)
			if cur.Cmp(prev) > 0 {
				t.Fatalf("P not monotone in f at n=%d f=%d", n, f)
			}
			prev = cur
		}
	}
}

func TestConvergesToOne(t *testing.T) {
	// Figure 2's claim: lim N→∞ P[Success] = 1 for fixed f. The
	// failure probability is dominated by the seven pair-local 2-cuts,
	// so it decays like f(f-1)/(2N)²: quadrupling under a doubling of N.
	for f := 2; f <= 10; f++ {
		if p := PSuccessFloat(2000, f); p < 0.9999 {
			t.Errorf("P(2000,%d) = %v, not converging to 1", f, p)
		}
		fail1 := 1 - PSuccessFloat(1000, f)
		fail2 := 1 - PSuccessFloat(2000, f)
		if ratio := fail1 / fail2; ratio < 3.5 || ratio > 4.5 {
			t.Errorf("f=%d: failure probability ratio across N doubling = %v, want ~4", f, ratio)
		}
	}
	// And convergence is visibly progressing along the curve.
	if !(PSuccessFloat(60, 3) > PSuccessFloat(10, 3)) {
		t.Error("expected P(60,3) > P(10,3)")
	}
}

func TestSeries(t *testing.T) {
	s := Series(2, 3, 63)
	if len(s) != 61 {
		t.Fatalf("series length %d, want 61", len(s))
	}
	if s[15] != PSuccessFloat(18, 2) {
		t.Fatal("series misaligned")
	}
	for i, p := range s {
		if p < 0 || p > 1 {
			t.Fatalf("series[%d] = %v outside [0,1]", i, p)
		}
	}
}

func TestSeriesPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Series(2, 10, 5) did not panic")
		}
	}()
	Series(2, 10, 5)
}

func TestPSuccessPanicsOutOfRange(t *testing.T) {
	for name, fn := range map[string]func(){
		"n too small": func() { SuccessCount(1, 0) },
		"f negative":  func() { SuccessCount(4, -1) },
		"f too large": func() { SuccessCount(4, 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMixtureSuccess(t *testing.T) {
	// q=0 means only the zero-failure scenario: certain success.
	if p := MixtureSuccess(10, 0, 10); p != 1 {
		t.Fatalf("MixtureSuccess(q=0) = %v, want 1", p)
	}
	// Mixtures are bounded by the best and worst mixed-in terms.
	p := MixtureSuccess(10, 0.2, 10)
	if p <= PSuccessFloat(10, 10) || p > 1 {
		t.Fatalf("MixtureSuccess = %v out of expected range", p)
	}
	// Heavier tails can only hurt.
	if MixtureSuccess(10, 0.5, 10) > MixtureSuccess(10, 0.1, 10) {
		t.Fatal("mixture not monotone in q")
	}
}

func TestMixturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MixtureSuccess(q=1) did not panic")
		}
	}()
	MixtureSuccess(10, 1, 5)
}

func TestEnumerateAllPairsStricter(t *testing.T) {
	// Full-cluster survivability is a subset of pair survivability.
	c := topology.Dual(5)
	for f := 0; f <= 4; f++ {
		all, tot1, err := EnumerateAllPairs(c, f)
		if err != nil {
			t.Fatal(err)
		}
		pair, tot2, err := EnumeratePair(c, f, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tot1.Cmp(tot2) != 0 {
			t.Fatal("scenario totals differ")
		}
		if all.Cmp(pair) > 0 {
			t.Fatalf("f=%d: all-pairs count %v exceeds pair count %v", f, all, pair)
		}
	}
}

func TestForEachSubsetCounts(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for k := 0; k <= n; k++ {
			count := 0
			seen := map[string]bool{}
			forEachSubset(n, k, func(idx []int) {
				count++
				key := ""
				prev := -1
				for _, v := range idx {
					if v <= prev || v < 0 || v >= n {
						t.Fatalf("subset not ascending/in-range: %v", idx)
					}
					prev = v
					key += string(rune('a' + v))
				}
				if seen[key] {
					t.Fatalf("duplicate subset %v", idx)
				}
				seen[key] = true
			})
			if want := Binomial(n, k).Int64(); int64(count) != want {
				t.Fatalf("forEachSubset(%d,%d) visited %d, want %d", n, k, count, want)
			}
		}
	}
}

func TestEnumerateRejectsBadF(t *testing.T) {
	if _, _, err := EnumeratePair(topology.Dual(3), 99, 0, 1); err == nil {
		t.Fatal("oversized f accepted")
	}
	if _, _, err := EnumerateAllPairs(topology.Dual(3), -1); err == nil {
		t.Fatal("negative f accepted")
	}
}

func BenchmarkPSuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PSuccess(63, 10)
	}
}

func BenchmarkSeriesF4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Series(4, 5, 63)
	}
}
