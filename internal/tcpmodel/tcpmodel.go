// Package tcpmodel models TCP's retransmission timer, the yardstick
// the paper measures DRS recovery against: a new route is "often found
// in the time of a TCP retransmit, so server applications are unaware
// that a network failure has occurred."
//
// The model is the classic exponential-backoff RTO: a segment sent
// into an outage is retransmitted at RTO, then 2·RTO, 4·RTO, … (capped)
// until either an attempt lands after the outage ends — the segment is
// delivered, the application just saw added latency — or the retry
// budget is exhausted and the connection fails.
package tcpmodel

import (
	"fmt"
	"time"
)

// Params configures the retransmission model. The defaults mirror a
// classic BSD-style TCP on a LAN.
type Params struct {
	// RTO is the initial retransmission timeout.
	RTO time.Duration
	// MaxRTO caps the exponential backoff.
	MaxRTO time.Duration
	// MaxRetries is the number of retransmissions before the
	// connection is declared dead.
	MaxRetries int
}

// Defaults returns LAN-typical parameters: 1 s initial RTO (RFC 6298
// floor), 64 s cap, 8 retries.
func Defaults() Params {
	return Params{RTO: time.Second, MaxRTO: 64 * time.Second, MaxRetries: 8}
}

func (p Params) validate() error {
	if p.RTO <= 0 {
		return fmt.Errorf("tcpmodel: RTO must be positive, have %v", p.RTO)
	}
	if p.MaxRTO < p.RTO {
		return fmt.Errorf("tcpmodel: MaxRTO %v below RTO %v", p.MaxRTO, p.RTO)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("tcpmodel: negative MaxRetries")
	}
	return nil
}

// AttemptTimes returns the send offsets of the original transmission
// and every retransmission, relative to the first send: 0, RTO,
// RTO+2·RTO, … with per-step backoff capped at MaxRTO.
func (p Params) AttemptTimes() ([]time.Duration, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	out := make([]time.Duration, 0, p.MaxRetries+1)
	out = append(out, 0)
	step := p.RTO
	at := time.Duration(0)
	for i := 0; i < p.MaxRetries; i++ {
		at += step
		out = append(out, at)
		step *= 2
		if step > p.MaxRTO {
			step = p.MaxRTO
		}
	}
	return out, nil
}

// Outcome describes what a TCP sender experiences across an outage.
type Outcome struct {
	// Delivered reports whether some attempt landed after the outage.
	Delivered bool
	// Delay is the application-visible extra latency: the offset of
	// the first successful attempt (0 when the first send succeeds).
	Delay time.Duration
	// Attempts is the number of transmissions used (1 = no
	// retransmission needed).
	Attempts int
}

// Send models a segment first transmitted at sendTime while the path
// is unusable during [outageStart, outageStart+outageLen). Attempts
// that fall inside the outage are lost; the first attempt at or after
// the end of the outage is delivered.
func (p Params) Send(sendTime, outageStart time.Time, outageLen time.Duration) (Outcome, error) {
	attempts, err := p.AttemptTimes()
	if err != nil {
		return Outcome{}, err
	}
	outageEnd := outageStart.Add(outageLen)
	for i, off := range attempts {
		at := sendTime.Add(off)
		if at.Before(outageStart) || !at.Before(outageEnd) {
			return Outcome{Delivered: true, Delay: off, Attempts: i + 1}, nil
		}
	}
	return Outcome{Delivered: false, Delay: 0, Attempts: len(attempts)}, nil
}

// MaxMaskableOutage returns the longest outage that a DRS-style repair
// can hide behind a single retransmission: if the path is restored
// within this duration of the first (lost) transmission, TCP recovers
// on its first retry and the application sees at most one RTO of added
// latency. This is the quantitative form of the paper's "route is
// often found in the time of a TCP retransmit".
func (p Params) MaxMaskableOutage() (time.Duration, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	return p.RTO, nil
}

// SurvivableOutage returns the longest outage (starting exactly at the
// first transmission) that does not kill the connection.
func (p Params) SurvivableOutage() (time.Duration, error) {
	attempts, err := p.AttemptTimes()
	if err != nil {
		return 0, err
	}
	return attempts[len(attempts)-1], nil
}
