package tcpmodel

import (
	"testing"
	"time"
)

var epoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAttemptTimesBackoff(t *testing.T) {
	p := Params{RTO: time.Second, MaxRTO: 8 * time.Second, MaxRetries: 5}
	got, err := p.AttemptTimes()
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{
		0,
		1 * time.Second,  // +1
		3 * time.Second,  // +2
		7 * time.Second,  // +4
		15 * time.Second, // +8 (capped)
		23 * time.Second, // +8 (capped)
	}
	if len(got) != len(want) {
		t.Fatalf("attempts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attempt %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAttemptTimesZeroRetries(t *testing.T) {
	p := Params{RTO: time.Second, MaxRTO: time.Second, MaxRetries: 0}
	got, err := p.AttemptTimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("attempts = %v", got)
	}
}

func TestSendBeforeOutage(t *testing.T) {
	p := Defaults()
	out, err := p.Send(epoch, epoch.Add(time.Minute), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Delay != 0 || out.Attempts != 1 {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSendMaskedByFastRepair(t *testing.T) {
	// DRS repairs in 600 ms; TCP's first retransmission at 1 s lands
	// on the repaired path: application sees 1 s latency, no error.
	p := Defaults()
	out, err := p.Send(epoch, epoch, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Attempts != 2 || out.Delay != time.Second {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSendLongOutageMoreRetries(t *testing.T) {
	// A reactive-routing style 30 s outage needs several retries:
	// attempts at 0,1,3,7,15,31 — delivered on the 6th at 31 s.
	p := Defaults()
	out, err := p.Send(epoch, epoch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Attempts != 6 || out.Delay != 31*time.Second {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestSendConnectionDeath(t *testing.T) {
	p := Params{RTO: time.Second, MaxRTO: time.Second, MaxRetries: 3}
	// Attempts at 0,1,2,3 s; outage of 10 s swallows them all.
	out, err := p.Send(epoch, epoch, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if out.Delivered {
		t.Fatalf("outcome = %+v, want dead connection", out)
	}
	if out.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4", out.Attempts)
	}
}

func TestSendAtOutageEndBoundary(t *testing.T) {
	// An attempt exactly at outage end is delivered (interval is
	// half-open).
	p := Defaults()
	out, err := p.Send(epoch, epoch, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Delivered || out.Delay != time.Second {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestMaxMaskableOutage(t *testing.T) {
	p := Defaults()
	d, err := p.MaxMaskableOutage()
	if err != nil || d != time.Second {
		t.Fatalf("MaxMaskableOutage = %v, %v", d, err)
	}
	// Verify the claim it encodes: any outage < d starting at the
	// first send is recovered with exactly one retransmission.
	out, err := p.Send(epoch, epoch, d-time.Millisecond)
	if err != nil || !out.Delivered || out.Attempts != 2 {
		t.Fatalf("outcome = %+v, %v", out, err)
	}
}

func TestSurvivableOutage(t *testing.T) {
	p := Params{RTO: time.Second, MaxRTO: 4 * time.Second, MaxRetries: 3}
	// Attempts at 0,1,3,7.
	d, err := p.SurvivableOutage()
	if err != nil || d != 7*time.Second {
		t.Fatalf("SurvivableOutage = %v, %v", d, err)
	}
	out, err := p.Send(epoch, epoch, d)
	if err != nil || !out.Delivered {
		t.Fatalf("outage of exactly %v should be survivable: %+v", d, out)
	}
	out, err = p.Send(epoch, epoch, d+time.Nanosecond)
	if err != nil || out.Delivered {
		t.Fatalf("outage beyond %v should kill the connection: %+v", d, out)
	}
}

func TestValidation(t *testing.T) {
	for name, p := range map[string]Params{
		"zero RTO":    {RTO: 0, MaxRTO: time.Second, MaxRetries: 1},
		"max < rto":   {RTO: 2 * time.Second, MaxRTO: time.Second, MaxRetries: 1},
		"neg retries": {RTO: time.Second, MaxRTO: time.Second, MaxRetries: -1},
	} {
		if _, err := p.AttemptTimes(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := p.Send(epoch, epoch, time.Second); err == nil {
			t.Errorf("%s: Send accepted", name)
		}
		if _, err := p.MaxMaskableOutage(); err == nil {
			t.Errorf("%s: MaxMaskableOutage accepted", name)
		}
	}
}
