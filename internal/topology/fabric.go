package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Fabric generalizes Cluster from "N servers on R shared back planes"
// to an arbitrary switched fabric: hosts with one or more NICs, a set
// of switches, and links. A link is either a NIC (host ↔ switch, one
// component covering the whole host-side attachment, exactly like the
// paper's NIC on its back plane) or a trunk (switch ↔ switch).
//
// Components are numbered densely, extending the Cluster scheme so the
// paper's dual-rail cluster keeps its exact numbering:
//
//	NIC(host i, port k) -> i*P + k                    (0 ≤ id < H*P)
//	Switch(s)           -> H*P + s                    (H*P ≤ id < H*P + S)
//	Trunk(t)            -> H*P + S + t                (the rest)
//
// where H is the host count, P the per-host port count and S the
// switch count. FromCluster maps a Cluster onto a Fabric whose
// switches are the back planes and whose NICs keep their ids, so code
// that stored dual-rail components in bitsets reads them back
// unchanged. Use the accessors (NIC, Switch, TrunkComp, Describe) —
// dense-id arithmetic outside this package is deprecated.
type Fabric struct {
	// Kind names the family the fabric was built from: "dualRail",
	// "fatTree", "bcube", or a custom label.
	Kind string

	hosts    int
	ports    int
	switches int
	hostSw   []int32 // hostSw[h*ports+p] = switch h's port p attaches to
	trunks   []Trunk

	// Switch-graph adjacency in CSR form, for routing and BFS.
	swOff []int32
	swAdj []int32 // neighbouring switch
	swTrk []int32 // trunk index carrying that adjacency
}

// Trunk is one switch-to-switch link.
type Trunk struct{ A, B int }

// Fabric component kinds, extending the Cluster universe.
const (
	// KindSwitch is a switching element (a back plane generalized).
	KindSwitch Kind = iota + 2
	// KindTrunk is a switch-to-switch link.
	KindTrunk
)

// NewFabric assembles a fabric from explicit wiring: hostSw lists, for
// each host in turn, the switch each of its ports attaches to
// (host-major, port-minor — the dense NIC order); trunks lists the
// switch-to-switch links.
func NewFabric(kind string, hosts, ports, switches int, hostSw []int32, trunks []Trunk) (*Fabric, error) {
	f := &Fabric{Kind: kind, hosts: hosts, ports: ports, switches: switches, hostSw: hostSw, trunks: trunks}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	f.buildAdjacency()
	return f, nil
}

// Validate reports whether the fabric shape is usable.
func (f *Fabric) Validate() error {
	if f.hosts < 2 {
		return fmt.Errorf("topology: fabric needs at least 2 hosts, have %d", f.hosts)
	}
	if f.ports < 1 {
		return fmt.Errorf("topology: fabric needs at least 1 port per host, have %d", f.ports)
	}
	if f.switches < 1 {
		return fmt.Errorf("topology: fabric needs at least 1 switch, have %d", f.switches)
	}
	if len(f.hostSw) != f.hosts*f.ports {
		return fmt.Errorf("topology: fabric wiring lists %d attachments, want %d", len(f.hostSw), f.hosts*f.ports)
	}
	for i, s := range f.hostSw {
		if s < 0 || int(s) >= f.switches {
			return fmt.Errorf("topology: host %d port %d attached to switch %d outside [0,%d)",
				i/f.ports, i%f.ports, s, f.switches)
		}
	}
	for i, t := range f.trunks {
		if t.A < 0 || t.A >= f.switches || t.B < 0 || t.B >= f.switches || t.A == t.B {
			return fmt.Errorf("topology: trunk %d (%d↔%d) invalid for %d switches", i, t.A, t.B, f.switches)
		}
	}
	return nil
}

func (f *Fabric) buildAdjacency() {
	deg := make([]int32, f.switches+1)
	for _, t := range f.trunks {
		deg[t.A+1]++
		deg[t.B+1]++
	}
	for s := 0; s < f.switches; s++ {
		deg[s+1] += deg[s]
	}
	f.swOff = deg
	f.swAdj = make([]int32, 2*len(f.trunks))
	f.swTrk = make([]int32, 2*len(f.trunks))
	fill := make([]int32, f.switches)
	for i, t := range f.trunks {
		a := f.swOff[t.A] + fill[t.A]
		f.swAdj[a], f.swTrk[a] = int32(t.B), int32(i)
		fill[t.A]++
		b := f.swOff[t.B] + fill[t.B]
		f.swAdj[b], f.swTrk[b] = int32(t.A), int32(i)
		fill[t.B]++
	}
	// Deterministic neighbour order: ascending switch id (ties by trunk
	// index), independent of trunk declaration order.
	for s := 0; s < f.switches; s++ {
		lo, hi := f.swOff[s], f.swOff[s+1]
		adj, trk := f.swAdj[lo:hi], f.swTrk[lo:hi]
		sort.Sort(&adjSorter{adj: adj, trk: trk})
	}
}

type adjSorter struct{ adj, trk []int32 }

func (a *adjSorter) Len() int { return len(a.adj) }
func (a *adjSorter) Less(i, j int) bool {
	if a.adj[i] != a.adj[j] {
		return a.adj[i] < a.adj[j]
	}
	return a.trk[i] < a.trk[j]
}
func (a *adjSorter) Swap(i, j int) {
	a.adj[i], a.adj[j] = a.adj[j], a.adj[i]
	a.trk[i], a.trk[j] = a.trk[j], a.trk[i]
}

// Hosts returns the number of hosts (servers).
func (f *Fabric) Hosts() int { return f.hosts }

// Ports returns the number of NICs per host.
func (f *Fabric) Ports() int { return f.ports }

// Switches returns the number of switching elements.
func (f *Fabric) Switches() int { return f.switches }

// Trunks returns the number of switch-to-switch links.
func (f *Fabric) Trunks() int { return len(f.trunks) }

// Trunk returns trunk t's endpoints.
func (f *Fabric) Trunk(t int) Trunk {
	if t < 0 || t >= len(f.trunks) {
		panic(fmt.Sprintf("topology: trunk %d out of range [0,%d)", t, len(f.trunks)))
	}
	return f.trunks[t]
}

// HostSwitch returns the switch host h's port p attaches to.
func (f *Fabric) HostSwitch(h, p int) int {
	if h < 0 || h >= f.hosts || p < 0 || p >= f.ports {
		panic(fmt.Sprintf("topology: HostSwitch(%d,%d) out of range for %d hosts × %d ports", h, p, f.hosts, f.ports))
	}
	return int(f.hostSw[h*f.ports+p])
}

// SwitchNeighbors calls fn for every trunk adjacency of switch s, in
// ascending neighbour order: the neighbouring switch and the trunk
// index connecting them.
func (f *Fabric) SwitchNeighbors(s int, fn func(neighbor, trunk int)) {
	for i := f.swOff[s]; i < f.swOff[s+1]; i++ {
		fn(int(f.swAdj[i]), int(f.swTrk[i]))
	}
}

// Components returns the size of the failure-component universe:
// H*P NICs, S switches, T trunks.
func (f *Fabric) Components() int { return f.hosts*f.ports + f.switches + len(f.trunks) }

// NIC returns the component id of host h's port p attachment.
func (f *Fabric) NIC(h, p int) Component {
	if h < 0 || h >= f.hosts || p < 0 || p >= f.ports {
		panic(fmt.Sprintf("topology: NIC(%d,%d) out of range for %d hosts × %d ports", h, p, f.hosts, f.ports))
	}
	return Component(h*f.ports + p)
}

// Switch returns the component id of switch s.
func (f *Fabric) Switch(s int) Component {
	if s < 0 || s >= f.switches {
		panic(fmt.Sprintf("topology: Switch(%d) out of range for %d switches", s, f.switches))
	}
	return Component(f.hosts*f.ports + s)
}

// TrunkComp returns the component id of trunk t.
func (f *Fabric) TrunkComp(t int) Component {
	if t < 0 || t >= len(f.trunks) {
		panic(fmt.Sprintf("topology: trunk %d out of range [0,%d)", t, len(f.trunks)))
	}
	return Component(f.hosts*f.ports + f.switches + t)
}

// Describe decodes a component id. For a NIC it returns
// (KindNIC, host, port); for a switch (KindSwitch, switch, -1); for a
// trunk (KindTrunk, trunkIndex, -1) — use Trunk for its endpoints.
func (f *Fabric) Describe(comp Component) (kind Kind, a, b int) {
	id := int(comp)
	if id < 0 || id >= f.Components() {
		panic(fmt.Sprintf("topology: component %d out of range (universe %d)", id, f.Components()))
	}
	if id < f.hosts*f.ports {
		return KindNIC, id / f.ports, id % f.ports
	}
	id -= f.hosts * f.ports
	if id < f.switches {
		return KindSwitch, id, -1
	}
	return KindTrunk, id - f.switches, -1
}

// Name returns a human-readable component name such as "nic(3,0)",
// "switch(2)" or "trunk(5:2-7)". Dual-rail fabrics keep the paper's
// "backplane(k)" naming for their switches.
func (f *Fabric) Name(comp Component) string {
	kind, a, _ := f.Describe(comp)
	switch kind {
	case KindNIC:
		return fmt.Sprintf("nic(%d,%d)", a, int(comp)%f.ports)
	case KindSwitch:
		if f.Kind == "dualRail" {
			return fmt.Sprintf("backplane(%d)", a)
		}
		return fmt.Sprintf("switch(%d)", a)
	default:
		t := f.trunks[a]
		return fmt.Sprintf("trunk(%d:%d-%d)", a, t.A, t.B)
	}
}

// FromCluster maps the paper's shared-segment cluster onto the fabric
// model: each back plane becomes one switch, each NIC the host-side
// link to it, no trunks. Component numbering is identical to the
// Cluster's: NIC(i,k) and Backplane(k) keep their dense ids.
func FromCluster(c Cluster) (*Fabric, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	hostSw := make([]int32, c.Nodes*c.Rails)
	for i := 0; i < c.Nodes; i++ {
		for r := 0; r < c.Rails; r++ {
			hostSw[i*c.Rails+r] = int32(r)
		}
	}
	return NewFabric("dualRail", c.Nodes, c.Rails, c.Rails, hostSw, nil)
}

// FatTree builds the canonical k-ary fat-tree (Al-Fares et al., also
// the reference topology of Couto et al.'s survivability comparison):
// k pods, each with k/2 edge and k/2 aggregation switches, (k/2)² core
// switches, and k³/4 single-homed hosts. k must be even and ≥ 2.
//
// Switch numbering: edge switches first (pod-major), then aggregation
// (pod-major), then core. Trunk numbering: edge↔agg (pod-major, edge-
// major), then agg↔core (pod-major, agg-major).
func FatTree(k int) (*Fabric, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and ≥ 2, have %d", k)
	}
	half := k / 2
	hosts := k * half * half
	edge := k * half
	agg := k * half
	core := half * half
	switches := edge + agg + core

	hostSw := make([]int32, hosts)
	hpp := half * half // hosts per pod
	for h := 0; h < hosts; h++ {
		pod := h / hpp
		e := (h % hpp) / half
		hostSw[h] = int32(pod*half + e)
	}
	trunks := make([]Trunk, 0, k*half*half*2)
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				trunks = append(trunks, Trunk{A: pod*half + e, B: edge + pod*half + a})
			}
		}
	}
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				trunks = append(trunks, Trunk{A: edge + pod*half + a, B: edge + agg + a*half + c})
			}
		}
	}
	return NewFabric("fatTree", hosts, 1, switches, hostSw, trunks)
}

// BCube builds BCube(n,k) (Guo et al.): n^(k+1) hosts with k+1 ports
// each, (k+1)·n^k switches arranged in k+1 levels, and no switch-to-
// switch links — all multi-hop paths relay through hosts, which is
// why BCube is the server-centric point of Couto et al.'s comparison.
// n is the switch radix (≥ 2); k ≥ 0 is the highest level.
//
// Host h's port ℓ attaches to level-ℓ switch (h/n^(ℓ+1))·n^ℓ + h mod n^ℓ.
func BCube(n, k int) (*Fabric, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: BCube radix must be ≥ 2, have %d", n)
	}
	if k < 0 || k > 10 {
		return nil, fmt.Errorf("topology: BCube level %d outside [0,10]", k)
	}
	hosts := 1
	perLevel := 1
	for i := 0; i <= k; i++ {
		hosts *= n
		if i < k {
			perLevel *= n
		}
	}
	if hosts > 1<<20 {
		return nil, fmt.Errorf("topology: BCube(%d,%d) has %d hosts (limit %d)", n, k, hosts, 1<<20)
	}
	ports := k + 1
	switches := ports * perLevel
	hostSw := make([]int32, hosts*ports)
	for h := 0; h < hosts; h++ {
		stride := 1 // n^ℓ
		for l := 0; l < ports; l++ {
			j := (h/(stride*n))*stride + h%stride
			hostSw[h*ports+l] = int32(l*perLevel + j)
			stride *= n
		}
	}
	return NewFabric("bcube", hosts, ports, switches, hostSw, nil)
}

// Parse builds a fabric from a CLI-style descriptor:
//
//	dualRail:n=12         the paper's cluster (optional rails=R)
//	fatTree:k=8           k-ary fat-tree
//	bcube:n=4,k=1         BCube(n,k)
//
// The kind alone ("fatTree") is rejected — parameters are explicit so
// a scripted sweep never silently runs a default size.
func Parse(desc string) (*Fabric, error) {
	kind, params, _ := strings.Cut(desc, ":")
	kv := map[string]int{}
	if params != "" {
		for _, tok := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(tok, "=")
			if !ok {
				return nil, fmt.Errorf("topology: bad fabric parameter %q (want key=value)", tok)
			}
			v, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return nil, fmt.Errorf("topology: bad fabric parameter %q: %v", tok, err)
			}
			kv[strings.TrimSpace(key)] = v
		}
	}
	switch kind {
	case "dualRail":
		n, ok := kv["n"]
		if !ok {
			return nil, fmt.Errorf("topology: dualRail needs n=<hosts> (e.g. dualRail:n=12)")
		}
		rails := 2
		if r, ok := kv["rails"]; ok {
			rails = r
		}
		return FromCluster(Cluster{Nodes: n, Rails: rails})
	case "fatTree":
		k, ok := kv["k"]
		if !ok {
			return nil, fmt.Errorf("topology: fatTree needs k=<arity> (e.g. fatTree:k=8)")
		}
		return FatTree(k)
	case "bcube":
		n, ok := kv["n"]
		if !ok {
			return nil, fmt.Errorf("topology: bcube needs n=<radix> (e.g. bcube:n=4,k=1)")
		}
		k := kv["k"]
		return BCube(n, k)
	default:
		return nil, fmt.Errorf("topology: unknown fabric kind %q (want dualRail, fatTree or bcube)", kind)
	}
}
