package topology

import (
	"strings"
	"testing"
)

// The dual-rail fabric must keep the Cluster's dense component
// numbering exactly — goldens and stored bitsets depend on it.
func TestFromClusterNumberingIdentity(t *testing.T) {
	for _, n := range []int{2, 3, 12, 90} {
		cl := Dual(n)
		f, err := FromCluster(cl)
		if err != nil {
			t.Fatalf("FromCluster(Dual(%d)): %v", n, err)
		}
		if f.Hosts() != cl.Nodes || f.Ports() != cl.Rails || f.Switches() != cl.Rails || f.Trunks() != 0 {
			t.Fatalf("shape mismatch: hosts=%d ports=%d switches=%d trunks=%d",
				f.Hosts(), f.Ports(), f.Switches(), f.Trunks())
		}
		if f.Components() != cl.Components() {
			t.Fatalf("universe %d != cluster %d", f.Components(), cl.Components())
		}
		for i := 0; i < n; i++ {
			for r := 0; r < cl.Rails; r++ {
				if f.NIC(i, r) != cl.NIC(i, r) {
					t.Fatalf("NIC(%d,%d): fabric %d != cluster %d", i, r, f.NIC(i, r), cl.NIC(i, r))
				}
			}
		}
		for r := 0; r < cl.Rails; r++ {
			if f.Switch(r) != cl.Backplane(r) {
				t.Fatalf("Switch(%d) %d != Backplane %d", r, f.Switch(r), cl.Backplane(r))
			}
			if got, want := f.Name(f.Switch(r)), cl.Name(cl.Backplane(r)); got != want {
				t.Fatalf("switch name %q != backplane name %q", got, want)
			}
		}
		if got, want := f.Name(f.NIC(1, 1)), cl.Name(cl.NIC(1, 1)); got != want {
			t.Fatalf("nic name %q != %q", got, want)
		}
	}
}

func TestFabricDescribeRoundTrip(t *testing.T) {
	f, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < f.Hosts(); h++ {
		for p := 0; p < f.Ports(); p++ {
			kind, a, b := f.Describe(f.NIC(h, p))
			if kind != KindNIC || a != h || b != p {
				t.Fatalf("Describe(NIC(%d,%d)) = %v,%d,%d", h, p, kind, a, b)
			}
		}
	}
	for s := 0; s < f.Switches(); s++ {
		kind, a, _ := f.Describe(f.Switch(s))
		if kind != KindSwitch || a != s {
			t.Fatalf("Describe(Switch(%d)) = %v,%d", s, kind, a)
		}
	}
	for tr := 0; tr < f.Trunks(); tr++ {
		kind, a, _ := f.Describe(f.TrunkComp(tr))
		if kind != KindTrunk || a != tr {
			t.Fatalf("Describe(Trunk(%d)) = %v,%d", tr, kind, a)
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	cases := []struct {
		k, hosts, switches, trunks int
	}{
		{2, 2, 5, 4},      // 2 hosts, 2 edge + 2 agg + 1 core
		{4, 16, 20, 32},   // canonical k=4
		{8, 128, 80, 256}, // k=8
	}
	for _, c := range cases {
		f, err := FatTree(c.k)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", c.k, err)
		}
		if f.Hosts() != c.hosts || f.Switches() != c.switches || f.Trunks() != c.trunks {
			t.Fatalf("FatTree(%d): hosts=%d switches=%d trunks=%d, want %d/%d/%d",
				c.k, f.Hosts(), f.Switches(), f.Trunks(), c.hosts, c.switches, c.trunks)
		}
		if f.Ports() != 1 {
			t.Fatalf("FatTree(%d): ports=%d, want 1", c.k, f.Ports())
		}
		// Every edge switch serves exactly k/2 hosts.
		count := make([]int, f.Switches())
		for h := 0; h < f.Hosts(); h++ {
			count[f.HostSwitch(h, 0)]++
		}
		for s, n := range count {
			if s < c.k*c.k/2 && n != c.k/2 {
				t.Fatalf("FatTree(%d): edge switch %d serves %d hosts, want %d", c.k, s, n, c.k/2)
			}
			if s >= c.k*c.k/2 && n != 0 {
				t.Fatalf("FatTree(%d): non-edge switch %d serves hosts", c.k, s)
			}
		}
	}
	if _, err := FatTree(3); err == nil {
		t.Fatal("FatTree(3) should reject odd arity")
	}
	if _, err := FatTree(0); err == nil {
		t.Fatal("FatTree(0) should fail")
	}
}

func TestBCubeShape(t *testing.T) {
	f, err := BCube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hosts() != 16 || f.Ports() != 2 || f.Switches() != 8 || f.Trunks() != 0 {
		t.Fatalf("BCube(4,1): hosts=%d ports=%d switches=%d trunks=%d",
			f.Hosts(), f.Ports(), f.Switches(), f.Trunks())
	}
	// Level-0 switch of host h groups hosts with the same high digit;
	// level-1 groups hosts with the same low digit.
	for h := 0; h < 16; h++ {
		if got, want := f.HostSwitch(h, 0), h/4; got != want {
			t.Fatalf("host %d level-0 switch %d, want %d", h, got, want)
		}
		if got, want := f.HostSwitch(h, 1), 4+h%4; got != want {
			t.Fatalf("host %d level-1 switch %d, want %d", h, got, want)
		}
	}
	// Each switch has exactly n=4 hosts.
	count := make([]int, f.Switches())
	for h := 0; h < f.Hosts(); h++ {
		for p := 0; p < f.Ports(); p++ {
			count[f.HostSwitch(h, p)]++
		}
	}
	for s, n := range count {
		if n != 4 {
			t.Fatalf("switch %d serves %d hosts, want 4", s, n)
		}
	}
	if _, err := BCube(1, 1); err == nil {
		t.Fatal("BCube(1,1) should reject radix < 2")
	}
	if _, err := BCube(2, -1); err == nil {
		t.Fatal("BCube(2,-1) should reject negative level")
	}
}

func TestFabricParse(t *testing.T) {
	f, err := Parse("fatTree:k=4")
	if err != nil || f.Kind != "fatTree" || f.Hosts() != 16 {
		t.Fatalf("Parse(fatTree:k=4) = %v, %v", f, err)
	}
	f, err = Parse("bcube:n=4,k=1")
	if err != nil || f.Kind != "bcube" || f.Hosts() != 16 {
		t.Fatalf("Parse(bcube:n=4,k=1) = %v, %v", f, err)
	}
	f, err = Parse("dualRail:n=12")
	if err != nil || f.Kind != "dualRail" || f.Hosts() != 12 || f.Ports() != 2 {
		t.Fatalf("Parse(dualRail:n=12) = %v, %v", f, err)
	}
	for _, bad := range []string{"", "fatTree", "fatTree:k=3", "mesh:n=4", "bcube:n=x", "fatTree:k"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
	if _, err := Parse("fatTree"); err == nil || !strings.Contains(err.Error(), "k=") {
		t.Fatalf("Parse(fatTree) error should mention k=, got %v", err)
	}
}

func TestFabricValidation(t *testing.T) {
	if _, err := NewFabric("x", 1, 1, 1, []int32{0}, nil); err == nil {
		t.Fatal("1 host should fail")
	}
	if _, err := NewFabric("x", 2, 1, 1, []int32{0, 5}, nil); err == nil {
		t.Fatal("out-of-range switch should fail")
	}
	if _, err := NewFabric("x", 2, 1, 2, []int32{0, 1}, []Trunk{{0, 0}}); err == nil {
		t.Fatal("self-loop trunk should fail")
	}
	if _, err := NewFabric("x", 2, 1, 2, []int32{0}, nil); err == nil {
		t.Fatal("short wiring should fail")
	}
}

func TestSwitchNeighborsDeterministic(t *testing.T) {
	// Declare trunks out of order; adjacency must come back sorted.
	f, err := NewFabric("x", 2, 1, 4, []int32{0, 0}, []Trunk{{0, 3}, {0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	f.SwitchNeighbors(0, func(nb, tr int) { got = append(got, nb) })
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("neighbors of 0 = %v, want [1 2 3]", got)
	}
}
