// Package topology models the network shapes the simulations run on.
//
// Two models live here. Cluster is the paper's architecture: N
// servers, each with one network interface card (NIC) per network
// rail, attached to R independent shared networks ("back planes" in
// the paper — non-meshed hubs; the paper fixes R = 2, giving exactly
// 2N + 2 failure-prone components). Fabric generalizes that to any
// switched topology — hosts, switches, and trunk links — with
// builders for the dual-rail cluster, fat-tree(k) and BCube(n,k).
//
// Components are numbered densely so failure scenarios can be stored
// in bitsets. For a Cluster:
//
//	NIC(node i, rail k)  -> i*R + k        (0 ≤ id < N*R)
//	Backplane(rail k)    -> N*R + k        (N*R ≤ id < N*R + R)
//
// A Fabric extends the same scheme (NICs first, then switches, then
// trunks), and FromCluster yields bit-for-bit identical numbering to
// the Cluster it wraps. The dense layout is an internal contract of
// this package: outside it, obtain ids through NIC/Backplane/Switch/
// TrunkComp and decode them with Describe — doing index arithmetic on
// Component values directly is deprecated, since it silently breaks
// on any non-dual-rail fabric.
package topology

import "fmt"

// Component identifies one failure-prone hardware component of a
// cluster or fabric: a NIC, a back plane/switch, or a trunk link.
type Component int

// Kind distinguishes the component classes. Clusters use the paper's
// two (NIC, back plane); fabrics add switches and trunks.
type Kind int

const (
	// KindNIC is a network interface card (one per node per rail).
	KindNIC Kind = iota
	// KindBackplane is a shared network segment (hub/back plane).
	KindBackplane
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNIC:
		return "nic"
	case KindBackplane:
		return "backplane"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Cluster describes the paper's flat shape: Nodes servers each
// attached to Rails independent shared networks through one NIC per
// rail. It is the special case of Fabric where every "switch" is a
// shared back plane reaching all hosts; FromCluster lifts a Cluster
// into the general model without renumbering its components.
type Cluster struct {
	Nodes int
	Rails int
}

// Dual returns the paper's configuration: n servers, two NICs each,
// two non-meshed back planes.
func Dual(n int) Cluster { return Cluster{Nodes: n, Rails: 2} }

// Validate reports whether the cluster shape is usable.
func (c Cluster) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("topology: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.Rails < 1 {
		return fmt.Errorf("topology: need at least 1 rail, have %d", c.Rails)
	}
	return nil
}

// Components returns the size of the failure-component universe:
// Nodes*Rails NICs plus Rails back planes (2N+2 when Rails == 2).
func (c Cluster) Components() int { return c.Nodes*c.Rails + c.Rails }

// NIC returns the component id of node's interface on rail.
func (c Cluster) NIC(node, rail int) Component {
	if node < 0 || node >= c.Nodes || rail < 0 || rail >= c.Rails {
		panic(fmt.Sprintf("topology: NIC(%d,%d) out of range for %d nodes × %d rails",
			node, rail, c.Nodes, c.Rails))
	}
	return Component(node*c.Rails + rail)
}

// Backplane returns the component id of the shared segment for rail.
func (c Cluster) Backplane(rail int) Component {
	if rail < 0 || rail >= c.Rails {
		panic(fmt.Sprintf("topology: Backplane(%d) out of range for %d rails", rail, c.Rails))
	}
	return Component(c.Nodes*c.Rails + rail)
}

// Describe decodes a component id. For a NIC it returns
// (KindNIC, node, rail); for a back plane it returns
// (KindBackplane, -1, rail).
func (c Cluster) Describe(comp Component) (kind Kind, node, rail int) {
	id := int(comp)
	if id < 0 || id >= c.Components() {
		panic(fmt.Sprintf("topology: component %d out of range (universe %d)", id, c.Components()))
	}
	if id < c.Nodes*c.Rails {
		return KindNIC, id / c.Rails, id % c.Rails
	}
	return KindBackplane, -1, id - c.Nodes*c.Rails
}

// Name returns a human-readable component name such as "nic(3,0)" or
// "backplane(1)".
func (c Cluster) Name(comp Component) string {
	kind, node, rail := c.Describe(comp)
	if kind == KindNIC {
		return fmt.Sprintf("nic(%d,%d)", node, rail)
	}
	return fmt.Sprintf("backplane(%d)", rail)
}

// Set is a bitset over a cluster's component universe, used to
// represent failure scenarios ("these components are down").
// The zero value of a Set is not usable; create one with NewSet.
type Set struct {
	words []uint64
	n     int
}

// NewSet returns an empty Set over a universe of n components.
func NewSet(n int) *Set {
	if n < 0 {
		panic("topology: negative universe size")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// NewSetOf returns a Set over universe n containing the given components.
func NewSetOf(n int, comps ...Component) *Set {
	s := NewSet(n)
	for _, c := range comps {
		s.Add(c)
	}
	return s
}

// Universe returns the universe size the Set was created with.
func (s *Set) Universe() int { return s.n }

func (s *Set) check(c Component) {
	if int(c) < 0 || int(c) >= s.n {
		panic(fmt.Sprintf("topology: component %d out of universe %d", c, s.n))
	}
}

// Add inserts component c.
func (s *Set) Add(c Component) {
	s.check(c)
	s.words[c>>6] |= 1 << (uint(c) & 63)
}

// Remove deletes component c.
func (s *Set) Remove(c Component) {
	s.check(c)
	s.words[c>>6] &^= 1 << (uint(c) & 63)
}

// Contains reports whether component c is in the set.
func (s *Set) Contains(c Component) bool {
	s.check(c)
	return s.words[c>>6]&(1<<(uint(c)&63)) != 0
}

// Len returns the number of components in the set.
func (s *Set) Len() int {
	total := 0
	for _, w := range s.words {
		total += popcount(w)
	}
	return total
}

// Clear removes all components.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Components returns the members in ascending order.
func (s *Set) Components() []Component {
	out := make([]Component, 0, s.Len())
	for i := 0; i < s.n; i++ {
		if s.Contains(Component(i)) {
			out = append(out, Component(i))
		}
	}
	return out
}

func popcount(w uint64) int {
	// Kernighan's loop is fine here: failure sets are tiny (f ≤ 10).
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}
