package topology

import (
	"testing"
	"testing/quick"
)

func TestDualShape(t *testing.T) {
	c := Dual(8)
	if c.Nodes != 8 || c.Rails != 2 {
		t.Fatalf("Dual(8) = %+v", c)
	}
	if got, want := c.Components(), 2*8+2; got != want {
		t.Fatalf("Components = %d, want %d (the paper's 2N+2)", got, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		c  Cluster
		ok bool
	}{
		{Cluster{2, 1}, true},
		{Cluster{2, 2}, true},
		{Cluster{1, 2}, false},
		{Cluster{0, 2}, false},
		{Cluster{4, 0}, false},
	} {
		err := tc.c.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.c, err, tc.ok)
		}
	}
}

func TestComponentNumberingRoundTrip(t *testing.T) {
	err := quick.Check(func(n8, r8 uint8) bool {
		n := int(n8%64) + 2
		r := int(r8%4) + 1
		c := Cluster{Nodes: n, Rails: r}
		seen := make(map[Component]bool)
		for node := 0; node < n; node++ {
			for rail := 0; rail < r; rail++ {
				comp := c.NIC(node, rail)
				if seen[comp] {
					return false
				}
				seen[comp] = true
				kind, gotNode, gotRail := c.Describe(comp)
				if kind != KindNIC || gotNode != node || gotRail != rail {
					return false
				}
			}
		}
		for rail := 0; rail < r; rail++ {
			comp := c.Backplane(rail)
			if seen[comp] {
				return false
			}
			seen[comp] = true
			kind, node, gotRail := c.Describe(comp)
			if kind != KindBackplane || node != -1 || gotRail != rail {
				return false
			}
		}
		return len(seen) == c.Components()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	c := Dual(4)
	if got := c.Name(c.NIC(3, 1)); got != "nic(3,1)" {
		t.Fatalf("Name = %q", got)
	}
	if got := c.Name(c.Backplane(0)); got != "backplane(0)" {
		t.Fatalf("Name = %q", got)
	}
	if KindNIC.String() != "nic" || KindBackplane.String() != "backplane" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := Dual(4)
	for name, fn := range map[string]func(){
		"NIC node":       func() { c.NIC(4, 0) },
		"NIC rail":       func() { c.NIC(0, 2) },
		"Backplane rail": func() { c.Backplane(2) },
		"Describe":       func() { c.Describe(Component(c.Components())) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(130)
	if s.Len() != 0 || s.Universe() != 130 {
		t.Fatal("fresh set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, c := range []Component{0, 64, 129} {
		if !s.Contains(c) {
			t.Fatalf("missing %d", c)
		}
	}
	if s.Contains(1) {
		t.Fatal("spurious membership")
	}
	s.Remove(64)
	if s.Contains(64) || s.Len() != 2 {
		t.Fatal("Remove failed")
	}
	got := s.Components()
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("Components = %v", got)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSetOf(10, 1, 2)
	c := s.Clone()
	c.Add(3)
	if s.Contains(3) {
		t.Fatal("Clone shares storage")
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("Clone lost members")
	}
}

func TestSetAddIdempotent(t *testing.T) {
	s := NewSet(8)
	s.Add(5)
	s.Add(5)
	if s.Len() != 1 {
		t.Fatalf("Len after double add = %d", s.Len())
	}
	s.Remove(7) // removing an absent member is a no-op
	if s.Len() != 1 {
		t.Fatal("Remove of absent member changed set")
	}
}

func TestSetOutOfUniversePanics(t *testing.T) {
	s := NewSet(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of universe did not panic")
		}
	}()
	s.Add(4)
}

func TestSetQuickMembership(t *testing.T) {
	err := quick.Check(func(adds []uint8) bool {
		s := NewSet(256)
		ref := make(map[Component]bool)
		for _, a := range adds {
			c := Component(a)
			if ref[c] {
				s.Remove(c)
				delete(ref, c)
			} else {
				s.Add(c)
				ref[c] = true
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for i := 0; i < 256; i++ {
			if s.Contains(Component(i)) != ref[Component(i)] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
