// Package trace records structured protocol events during
// simulations: probes, failures detected, routes repaired, packets
// forwarded. Experiments read the log to measure detection and
// recovery latency; the drsim tool prints it for debugging.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds emitted by the protocol implementations.
const (
	KindProbeSent Kind = iota
	KindProbeReply
	KindLinkDown
	KindLinkUp
	KindRouteInstalled
	KindRouteLost
	KindQuerySent
	KindOfferSent
	KindDataForwarded
	KindDataDropped
	KindDataDelivered
	// KindRouteDamped marks a recovered link held down by route-flap
	// damping (not re-trusted); KindRouteUndamped marks its release.
	KindRouteDamped
	KindRouteUndamped
	// KindNodeCrashed and KindNodeRestarted mark daemon fail-stop and
	// recovery in the crash–restart lifecycle; KindPeerRejoined marks
	// a daemon observing a peer's newer incarnation (a reboot) and
	// purging state from the previous life.
	KindNodeCrashed
	KindNodeRestarted
	KindPeerRejoined
	// KindDegradedEnter and KindDegradedExit bracket an overload
	// degraded-mode episode: budget saturation entered it, a sustained
	// quiet period ended it. KindRoutePinned marks a route the
	// degraded node kept (last-known-good) instead of churning.
	KindDegradedEnter
	KindDegradedExit
	KindRoutePinned
)

var kindNames = map[Kind]string{
	KindProbeSent:      "probe-sent",
	KindProbeReply:     "probe-reply",
	KindLinkDown:       "link-down",
	KindLinkUp:         "link-up",
	KindRouteInstalled: "route-installed",
	KindRouteLost:      "route-lost",
	KindQuerySent:      "query-sent",
	KindOfferSent:      "offer-sent",
	KindDataForwarded:  "data-forwarded",
	KindDataDropped:    "data-dropped",
	KindDataDelivered:  "data-delivered",
	KindRouteDamped:    "route-damped",
	KindRouteUndamped:  "route-undamped",
	KindNodeCrashed:    "node-crashed",
	KindNodeRestarted:  "node-restarted",
	KindPeerRejoined:   "peer-rejoined",
	KindDegradedEnter:  "degraded-enter",
	KindDegradedExit:   "degraded-exit",
	KindRoutePinned:    "route-pinned",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one protocol occurrence.
type Event struct {
	At     time.Duration // simulated (or wall) time since start
	Node   int           // node the event happened on
	Kind   Kind
	Peer   int    // peer node involved, -1 when not applicable
	Rail   int    // rail involved, -1 when not applicable
	Detail string // free-form context
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%12v node=%d %-15s peer=%d rail=%d %s",
		e.At, e.Node, e.Kind, e.Peer, e.Rail, e.Detail)
}

// Log is a bounded, concurrency-safe event log. When the bound is
// reached, the oldest half of the events is discarded (matching the
// historical batch-eviction retention, but in O(1): the storage is a
// ring, so eviction moves a cursor instead of copying megabytes).
type Log struct {
	mu      sync.Mutex
	ring    []Event // ring storage; grows geometrically up to max
	start   int     // index of the oldest retained event
	n       int     // number of retained events
	max     int
	dropped int64
}

// NewLog returns a log retaining at most max events (0 means a
// generous default of 1<<16).
func NewLog(max int) *Log {
	if max <= 0 {
		max = 1 << 16
	}
	return &Log{max: max}
}

// Append records an event.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	if l.n == len(l.ring) {
		if len(l.ring) < l.max {
			// Grow geometrically, linearizing the ring.
			newCap := len(l.ring) * 2
			if newCap == 0 {
				newCap = 256
			}
			if newCap > l.max {
				newCap = l.max
			}
			grown := make([]Event, newCap)
			l.copyOut(grown)
			l.ring = grown
			l.start = 0
		} else {
			// Full: drop the oldest half by advancing the cursor.
			half := l.max / 2
			if half == 0 {
				half = 1
			}
			l.start += half
			if l.start >= len(l.ring) {
				l.start -= len(l.ring)
			}
			l.n -= half
			l.dropped += int64(half)
		}
	}
	idx := l.start + l.n
	if idx >= len(l.ring) {
		idx -= len(l.ring)
	}
	l.ring[idx] = e
	l.n++
	l.mu.Unlock()
}

// copyOut linearizes the retained events into dst (len(dst) ≥ l.n).
func (l *Log) copyOut(dst []Event) {
	first := len(l.ring) - l.start
	if first > l.n {
		first = l.n
	}
	copy(dst, l.ring[l.start:l.start+first])
	copy(dst[first:], l.ring[:l.n-first])
}

// Events returns a copy of the retained events in append order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	l.copyOut(out)
	return out
}

// Dropped returns the number of events discarded due to the bound.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// at returns the i-th retained event (0 = oldest). Caller holds mu.
func (l *Log) at(i int) Event {
	idx := l.start + i
	if idx >= len(l.ring) {
		idx -= len(l.ring)
	}
	return l.ring[idx]
}

// Filter returns the retained events of the given kind, in order.
func (l *Log) Filter(k Kind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for i := 0; i < l.n; i++ {
		if e := l.at(i); e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// First returns the earliest retained event of kind k matching node
// (node < 0 matches any), and whether one exists.
func (l *Log) First(k Kind, node int) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < l.n; i++ {
		if e := l.at(i); e.Kind == k && (node < 0 || e.Node == node) {
			return e, true
		}
	}
	return Event{}, false
}

// Count returns the number of retained events of kind k.
func (l *Log) Count(k Kind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for i := 0; i < l.n; i++ {
		if l.at(i).Kind == k {
			n++
		}
	}
	return n
}
