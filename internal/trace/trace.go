// Package trace records structured protocol events during
// simulations: probes, failures detected, routes repaired, packets
// forwarded. Experiments read the log to measure detection and
// recovery latency; the drsim tool prints it for debugging.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds emitted by the protocol implementations.
const (
	KindProbeSent Kind = iota
	KindProbeReply
	KindLinkDown
	KindLinkUp
	KindRouteInstalled
	KindRouteLost
	KindQuerySent
	KindOfferSent
	KindDataForwarded
	KindDataDropped
	KindDataDelivered
	// KindRouteDamped marks a recovered link held down by route-flap
	// damping (not re-trusted); KindRouteUndamped marks its release.
	KindRouteDamped
	KindRouteUndamped
	// KindNodeCrashed and KindNodeRestarted mark daemon fail-stop and
	// recovery in the crash–restart lifecycle; KindPeerRejoined marks
	// a daemon observing a peer's newer incarnation (a reboot) and
	// purging state from the previous life.
	KindNodeCrashed
	KindNodeRestarted
	KindPeerRejoined
)

var kindNames = map[Kind]string{
	KindProbeSent:      "probe-sent",
	KindProbeReply:     "probe-reply",
	KindLinkDown:       "link-down",
	KindLinkUp:         "link-up",
	KindRouteInstalled: "route-installed",
	KindRouteLost:      "route-lost",
	KindQuerySent:      "query-sent",
	KindOfferSent:      "offer-sent",
	KindDataForwarded:  "data-forwarded",
	KindDataDropped:    "data-dropped",
	KindDataDelivered:  "data-delivered",
	KindRouteDamped:    "route-damped",
	KindRouteUndamped:  "route-undamped",
	KindNodeCrashed:    "node-crashed",
	KindNodeRestarted:  "node-restarted",
	KindPeerRejoined:   "peer-rejoined",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one protocol occurrence.
type Event struct {
	At     time.Duration // simulated (or wall) time since start
	Node   int           // node the event happened on
	Kind   Kind
	Peer   int    // peer node involved, -1 when not applicable
	Rail   int    // rail involved, -1 when not applicable
	Detail string // free-form context
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%12v node=%d %-15s peer=%d rail=%d %s",
		e.At, e.Node, e.Kind, e.Peer, e.Rail, e.Detail)
}

// Log is a bounded, concurrency-safe event log. When the bound is
// reached, the oldest events are discarded.
type Log struct {
	mu      sync.Mutex
	events  []Event
	max     int
	dropped int64
}

// NewLog returns a log retaining at most max events (0 means a
// generous default of 1<<16).
func NewLog(max int) *Log {
	if max <= 0 {
		max = 1 << 16
	}
	return &Log{max: max}
}

// Append records an event.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) == l.max {
		// Drop the oldest half rather than shifting on every append.
		half := l.max / 2
		copy(l.events, l.events[half:])
		l.events = l.events[:l.max-half]
		l.dropped += int64(half)
	}
	l.events = append(l.events, e)
}

// Events returns a copy of the retained events in append order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Dropped returns the number of events discarded due to the bound.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Filter returns the retained events of the given kind, in order.
func (l *Log) Filter(k Kind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// First returns the earliest retained event of kind k matching node
// (node < 0 matches any), and whether one exists.
func (l *Log) First(k Kind, node int) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.events {
		if e.Kind == k && (node < 0 || e.Node == node) {
			return e, true
		}
	}
	return Event{}, false
}

// Count returns the number of retained events of kind k.
func (l *Log) Count(k Kind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
