package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAppendAndRead(t *testing.T) {
	l := NewLog(10)
	l.Append(Event{At: time.Second, Node: 1, Kind: KindLinkDown, Peer: 2, Rail: 0})
	l.Append(Event{At: 2 * time.Second, Node: 1, Kind: KindRouteInstalled, Peer: 2, Rail: 1})
	got := l.Events()
	if len(got) != 2 || got[0].Kind != KindLinkDown || got[1].Kind != KindRouteInstalled {
		t.Fatalf("events = %v", got)
	}
	// Returned slice is a copy.
	got[0].Node = 99
	if l.Events()[0].Node != 1 {
		t.Fatal("Events exposed internal storage")
	}
}

func TestBoundDropsOldest(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 6; i++ {
		l.Append(Event{Node: i})
	}
	evs := l.Events()
	if len(evs) > 4 {
		t.Fatalf("retained %d events, bound 4", len(evs))
	}
	if l.Dropped() == 0 {
		t.Fatal("no drops recorded")
	}
	// The newest event is always retained.
	if evs[len(evs)-1].Node != 5 {
		t.Fatalf("newest lost: %v", evs)
	}
}

func TestFilterCountFirst(t *testing.T) {
	l := NewLog(0)
	l.Append(Event{At: 1, Node: 0, Kind: KindProbeSent})
	l.Append(Event{At: 2, Node: 1, Kind: KindLinkDown})
	l.Append(Event{At: 3, Node: 2, Kind: KindLinkDown})
	if n := l.Count(KindLinkDown); n != 2 {
		t.Fatalf("Count = %d", n)
	}
	if got := l.Filter(KindLinkDown); len(got) != 2 || got[0].Node != 1 {
		t.Fatalf("Filter = %v", got)
	}
	e, ok := l.First(KindLinkDown, -1)
	if !ok || e.Node != 1 {
		t.Fatalf("First any = %v %v", e, ok)
	}
	e, ok = l.First(KindLinkDown, 2)
	if !ok || e.At != 3 {
		t.Fatalf("First node=2 = %v %v", e, ok)
	}
	if _, ok := l.First(KindRouteLost, -1); ok {
		t.Fatal("First found a missing kind")
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Append(Event{Kind: KindProbeSent})
			}
		}()
	}
	wg.Wait()
	if n := l.Count(KindProbeSent); n != 8000 {
		t.Fatalf("count = %d", n)
	}
}

func TestStrings(t *testing.T) {
	e := Event{At: time.Second, Node: 3, Kind: KindQuerySent, Peer: 5, Rail: 1, Detail: "seq=9"}
	s := e.String()
	for _, want := range []string{"node=3", "query-sent", "peer=5", "rail=1", "seq=9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if Kind(999).String() != "Kind(999)" {
		t.Fatal("unknown kind formatting")
	}
}
