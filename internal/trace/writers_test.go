package trace

import (
	"fmt"
	"testing"
)

// TestDefaultBound: NewLog(0) applies the documented 1<<16 default and
// keeps exactly that many events once the writer overflows.
func TestDefaultBound(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < (1<<16)+10; i++ {
		l.Append(Event{Node: i})
	}
	if n := len(l.Events()); n > 1<<16 {
		t.Fatalf("retained %d events, default bound %d", n, 1<<16)
	}
	if l.Dropped() == 0 {
		t.Fatal("overflow recorded no drops")
	}
}

// TestDroppedAccumulatesAcrossHalvings: every overflow discards the
// oldest half, and Dropped sums across all of them.
func TestDroppedAccumulatesAcrossHalvings(t *testing.T) {
	l := NewLog(8)
	// 8 fills the log; each further append past a full log drops 4.
	for i := 0; i < 8+4+4+1; i++ {
		l.Append(Event{Node: i})
	}
	// Appends 9..12 trigger one halving (drop 4), 13..16 a second,
	// 17 a third.
	if d := l.Dropped(); d != 12 {
		t.Fatalf("Dropped = %d, want 12 (three halvings of 4)", d)
	}
	evs := l.Events()
	if evs[len(evs)-1].Node != 16 {
		t.Fatalf("newest event lost across halvings: %v", evs)
	}
	// Order is preserved within the retained window.
	for i := 1; i < len(evs); i++ {
		if evs[i].Node <= evs[i-1].Node {
			t.Fatalf("retained events out of order: %v", evs)
		}
	}
}

// TestKindNamesDistinct: every defined kind renders a distinct,
// non-fallback name — the trace dump depends on it.
func TestKindNamesDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindProbeSent; k <= KindRouteUndamped; k++ {
		name := k.String()
		if name == fmt.Sprintf("Kind(%d)", int(k)) {
			t.Errorf("kind %d has no name", int(k))
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
}

// TestFilterEmptyLog: reads on a fresh writer are safe and empty.
func TestFilterEmptyLog(t *testing.T) {
	l := NewLog(4)
	if got := l.Filter(KindLinkDown); len(got) != 0 {
		t.Fatalf("Filter on empty log = %v", got)
	}
	if n := l.Count(KindLinkDown); n != 0 {
		t.Fatalf("Count on empty log = %d", n)
	}
	if _, ok := l.First(KindLinkDown, -1); ok {
		t.Fatal("First on empty log found an event")
	}
	if l.Dropped() != 0 {
		t.Fatal("empty log reports drops")
	}
}
