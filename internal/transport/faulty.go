package transport

import (
	"fmt"
	"sync"
	"time"

	"drsnet/internal/clock"
	"drsnet/internal/rng"
)

// AllRails, as a rail argument to the partition methods, selects every
// rail of the pair.
const AllRails = -1

// FaultSpec is the per-frame impairment policy a Faults controller
// applies. Probabilities are independent per frame; the zero value
// passes every frame through untouched.
type FaultSpec struct {
	// Drop, Duplicate and Corrupt are per-frame probabilities in
	// [0,1]. A corrupted frame has one byte flipped — downstream wire
	// codecs must survive it (and the header checks usually discard
	// it), which is exactly the point.
	Drop, Duplicate, Corrupt float64
	// Reorder is the probability a frame is held back ReorderDelay
	// while frames behind it pass — genuine reordering, not jitter.
	Reorder float64
	// ReorderDelay is how long a reordered frame is held (default
	// 1ms when Reorder > 0).
	ReorderDelay time.Duration
	// Delay postpones every frame; Jitter adds a uniform random
	// extra in [0, Jitter).
	Delay, Jitter time.Duration
}

// validate panics on a malformed spec — fault injection is test
// machinery, and a bad campaign config is a programming error.
func (s FaultSpec) validate() {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"duplicate", s.Duplicate}, {"corrupt", s.Corrupt}, {"reorder", s.Reorder}} {
		if p.v < 0 || p.v > 1 {
			panic(fmt.Sprintf("transport: fault %s probability %v outside [0,1]", p.name, p.v))
		}
	}
	if s.ReorderDelay < 0 || s.Delay < 0 || s.Jitter < 0 {
		panic("transport: negative fault delay")
	}
}

// FaultStats counts what a Faults controller did to traffic.
type FaultStats struct {
	Delivered   int64 // frames handed up, possibly late or corrupted
	Dropped     int64
	Duplicated  int64
	Reordered   int64
	Corrupted   int64
	Partitioned int64 // frames eaten by a directed cut
}

// Faults is a shared fault-injection controller for a cluster of
// transports: build one, Wrap each node's Transport with it, and every
// frame the cluster delivers passes through the same seeded policy.
// It applies drop, duplicate, reorder, delay and corrupt impairments,
// directed (src, dst, rail) partitions — symmetric splits are two
// directed cuts — and per-node skew windows, all on the receive path,
// so it composes identically over Sim, Mem and UDP transports.
//
// Every random decision comes from one rng.Source substream, so under
// a deterministic inner transport (Mem on a manual clock, Sim) a
// campaign replays bit-identically from its seed. Over UDP the
// decisions are still seeded but goroutine interleaving orders them.
//
// Timed partition windows (PartitionWindow) run through the
// controller's clock.Clock, keeping schedules on simulated time.
type Faults struct {
	mu    sync.Mutex
	rng   *rng.Source
	clk   clock.Clock
	spec  FaultSpec
	cuts  map[cutKey]struct{}
	skew  map[int]time.Duration
	stats FaultStats
}

type cutKey struct{ src, dst, rail int }

// NewFaults builds a controller whose decisions replay from seed and
// whose deferred deliveries and partition windows run on clk.
func NewFaults(seed uint64, clk clock.Clock) *Faults {
	return &Faults{
		rng:  rng.New(seed).Split(0xfa017),
		clk:  clk,
		cuts: make(map[cutKey]struct{}),
		skew: make(map[int]time.Duration),
	}
}

// SetSpec replaces the impairment policy (the zero spec clears it).
func (f *Faults) SetSpec(spec FaultSpec) {
	spec.validate()
	if spec.Reorder > 0 && spec.ReorderDelay == 0 {
		spec.ReorderDelay = time.Millisecond
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spec = spec
}

// Partition installs a directed cut: frames src→dst on rail (AllRails
// = every rail) vanish. Idempotent.
func (f *Faults) Partition(src, dst, rail int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts[cutKey{src, dst, rail}] = struct{}{}
}

// Heal removes the directed cut installed with the same arguments.
func (f *Faults) Heal(src, dst, rail int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cuts, cutKey{src, dst, rail})
}

// HealAll removes every cut and skew window.
func (f *Faults) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts = make(map[cutKey]struct{})
	f.skew = make(map[int]time.Duration)
}

// PartitionWindow schedules a directed cut from start to stop on the
// controller's clock (stop ≤ start: the cut lasts forever). Both are
// delays from now, matching clock.Clock's AfterFunc.
func (f *Faults) PartitionWindow(src, dst, rail int, start, stop time.Duration) {
	f.clk.AfterFunc(start, func() { f.Partition(src, dst, rail) })
	if stop > start {
		f.clk.AfterFunc(stop, func() { f.Heal(src, dst, rail) })
	}
}

// SetSkew delays every delivery to node by d (0 clears it) — a crude
// but effective model of the node's clock running behind the cluster:
// relative to its own timers, everything arrives late.
func (f *Faults) SetSkew(node int, d time.Duration) {
	if d < 0 {
		panic("transport: negative skew")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if d == 0 {
		delete(f.skew, node)
		return
	}
	f.skew[node] = d
}

// Stats returns a snapshot of the controller's counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// cut reports whether src→dst on rail is severed. Caller holds f.mu.
func (f *Faults) cut(src, dst, rail int) bool {
	if _, ok := f.cuts[cutKey{src, dst, rail}]; ok {
		return true
	}
	_, ok := f.cuts[cutKey{src, dst, AllRails}]
	return ok
}

// Wrap returns inner's fault-injecting view. Wrap every node of a
// cluster with the same controller so partitions see both directions.
func (f *Faults) Wrap(inner Transport) Transport {
	return &Faulty{f: f, inner: inner}
}

// Faulty is one node's fault-injecting Transport, produced by
// Faults.Wrap. Sends pass through untouched; received frames run the
// controller's policy before reaching the node's receiver.
type Faulty struct {
	f     *Faults
	inner Transport
}

// Node implements Transport.
func (t *Faulty) Node() int { return t.inner.Node() }

// Nodes implements Transport.
func (t *Faulty) Nodes() int { return t.inner.Nodes() }

// Rails implements Transport.
func (t *Faulty) Rails() int { return t.inner.Rails() }

// Send implements Transport, delegating to the wrapped transport.
func (t *Faulty) Send(rail, dst int, payload []byte) error {
	return t.inner.Send(rail, dst, payload)
}

// SetReceiver implements Transport, interposing the fault policy
// between the wire and the node's receiver.
func (t *Faulty) SetReceiver(fn func(rail, src int, payload []byte)) {
	if fn == nil {
		t.inner.SetReceiver(nil)
		return
	}
	dst := t.inner.Node()
	t.inner.SetReceiver(func(rail, src int, payload []byte) {
		t.f.deliver(dst, rail, src, payload, fn)
	})
}

// deliver runs one received frame through the policy: partition check,
// drop/duplicate/corrupt/reorder draws, then immediate or deferred
// hand-off. Deferred copies the payload (the wire buffer is the inner
// transport's to reuse).
func (f *Faults) deliver(dst, rail, src int, payload []byte, fn func(rail, src int, payload []byte)) {
	f.mu.Lock()
	if f.cut(src, dst, rail) {
		f.stats.Partitioned++
		f.mu.Unlock()
		return
	}
	s := f.spec
	drop := s.Drop > 0 && f.rng.Float64() < s.Drop
	dup := s.Duplicate > 0 && f.rng.Float64() < s.Duplicate
	corrupt := s.Corrupt > 0 && f.rng.Float64() < s.Corrupt
	reorder := s.Reorder > 0 && f.rng.Float64() < s.Reorder
	delay := s.Delay
	if s.Jitter > 0 {
		delay += time.Duration(f.rng.Uint64n(uint64(s.Jitter)))
	}
	if drop {
		f.stats.Dropped++
		f.mu.Unlock()
		return
	}
	if corrupt && len(payload) > 0 {
		f.stats.Corrupted++
		mangled := make([]byte, len(payload))
		copy(mangled, payload)
		mangled[f.rng.Intn(len(mangled))] ^= 0xFF
		payload = mangled
	}
	if reorder {
		f.stats.Reordered++
		delay += s.ReorderDelay
	}
	delay += f.skew[dst]
	copies := 1
	if dup {
		f.stats.Duplicated++
		copies = 2
	}
	f.stats.Delivered += int64(copies)
	f.mu.Unlock()

	if delay <= 0 {
		for i := 0; i < copies; i++ {
			fn(rail, src, payload)
		}
		return
	}
	body := make([]byte, len(payload))
	copy(body, payload)
	f.clk.AfterFunc(delay, func() {
		for i := 0; i < copies; i++ {
			fn(rail, src, body)
		}
	})
}

var _ Transport = (*Faulty)(nil)
