package transport

import (
	"bytes"
	"testing"
	"time"

	"drsnet/internal/clock"
)

// faultyPair builds a 3-node Mem fabric on a manual clock with every
// node wrapped by one shared Faults controller, and per-node delivery
// recorders.
func faultyPair(t *testing.T, seed uint64) (*clock.Wall, *Faults, []Transport, []*[]string) {
	t.Helper()
	clk := clock.NewManual()
	mem := NewMem(3, 2, clk, 100*time.Microsecond)
	f := NewFaults(seed, clk)
	trs := make([]Transport, 3)
	logs := make([]*[]string, 3)
	for i := range trs {
		trs[i] = f.Wrap(mem.Node(i))
		log := &[]string{}
		logs[i] = log
		trs[i].SetReceiver(func(rail, src int, payload []byte) {
			*log = append(*log, string(payload))
		})
	}
	return clk, f, trs, logs
}

// TestFaultyPassThrough: a zero-spec controller is invisible — frames
// arrive exactly as the inner transport delivered them.
func TestFaultyPassThrough(t *testing.T) {
	clk, f, trs, logs := faultyPair(t, 1)
	if trs[0].Node() != 0 || trs[0].Nodes() != 3 || trs[0].Rails() != 2 {
		t.Fatalf("identity not delegated: node=%d nodes=%d rails=%d",
			trs[0].Node(), trs[0].Nodes(), trs[0].Rails())
	}
	if err := trs[0].Send(0, 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Send(1, 0, []byte("back")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(*logs[1]) != 1 || (*logs[1])[0] != "hello" {
		t.Fatalf("node 1 got %v", *logs[1])
	}
	if len(*logs[0]) != 1 || (*logs[0])[0] != "back" {
		t.Fatalf("node 0 got %v", *logs[0])
	}
	if st := f.Stats(); st.Delivered != 2 || st.Dropped+st.Corrupted+st.Partitioned != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFaultyAsymmetricPartition: a directed cut eats one direction of
// one pair — the reverse direction, other pairs, and broadcast to
// unpartitioned nodes still deliver — and healing restores it.
func TestFaultyAsymmetricPartition(t *testing.T) {
	clk, f, trs, logs := faultyPair(t, 2)
	f.Partition(0, 1, AllRails)

	if err := trs[0].Send(0, Broadcast, []byte("from0")); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].Send(0, 0, []byte("from1")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(*logs[1]) != 0 {
		t.Fatalf("partitioned node 1 heard %v", *logs[1])
	}
	if len(*logs[2]) != 1 {
		t.Fatalf("bystander node 2 got %v", *logs[2])
	}
	if len(*logs[0]) != 1 || (*logs[0])[0] != "from1" {
		t.Fatalf("reverse direction blocked: node 0 got %v", *logs[0])
	}
	if st := f.Stats(); st.Partitioned != 1 {
		t.Fatalf("partitioned count %d, want 1", st.Partitioned)
	}

	f.Heal(0, 1, AllRails)
	if err := trs[0].Send(0, 1, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(*logs[1]) != 1 || (*logs[1])[0] != "healed" {
		t.Fatalf("post-heal node 1 got %v", *logs[1])
	}
}

// TestFaultyPartitionWindow: cut and heal land at their scheduled
// instants on the controller's clock.
func TestFaultyPartitionWindow(t *testing.T) {
	clk, f, trs, logs := faultyPair(t, 3)
	f.PartitionWindow(0, 1, 0, 10*time.Millisecond, 20*time.Millisecond)

	send := func(tag string) {
		t.Helper()
		if err := trs[0].Send(0, 1, []byte(tag)); err != nil {
			t.Fatal(err)
		}
		clk.Advance(5 * time.Millisecond)
	}
	send("before") // delivered: window not open at t=0
	send("during") // sent at t=5ms; the 10ms Advance crosses the cut... no: sent at 5ms, delivered 5.1ms
	send("cut")    // sent at 10ms, cut active → eaten
	send("cut2")   // sent at 15ms → eaten
	send("after")  // sent at 20ms, heal landed → delivered
	want := []string{"before", "during", "after"}
	if got := *logs[1]; len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("window deliveries %v, want %v", got, want)
	}
}

// TestFaultyDropAndDeterminism: a lossy controller drops a seeded,
// replayable subset — same seed, same survivors; different seed,
// (overwhelmingly) different ones.
func TestFaultyDropAndDeterminism(t *testing.T) {
	deliverPattern := func(seed uint64) string {
		clk, f, trs, logs := faultyPair(t, seed)
		f.SetSpec(FaultSpec{Drop: 0.5})
		for i := 0; i < 64; i++ {
			if err := trs[0].Send(0, 1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			clk.Advance(200 * time.Microsecond)
		}
		pat := make([]byte, 0, 64)
		for _, s := range *logs[1] {
			pat = append(pat, s[0])
		}
		return string(pat)
	}
	a, b, c := deliverPattern(42), deliverPattern(42), deliverPattern(43)
	if a != b {
		t.Fatalf("same seed diverged:\n%x\n%x", a, b)
	}
	if a == c {
		t.Fatal("different seeds produced identical drop patterns")
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("drop 0.5 delivered %d/64 frames", len(a))
	}
}

// TestFaultyDuplicateCorruptReorder: each impairment does what it says
// — dup doubles a frame, corrupt flips exactly one byte of a copy,
// reorder holds a frame back past its successors.
func TestFaultyDuplicateCorruptReorder(t *testing.T) {
	// Duplicate everything: every frame arrives exactly twice.
	clk, f, trs, logs := faultyPair(t, 4)
	f.SetSpec(FaultSpec{Duplicate: 1})
	if err := trs[0].Send(0, 1, []byte("dup")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if got := *logs[1]; len(got) != 2 || got[0] != "dup" || got[1] != "dup" {
		t.Fatalf("duplicate: got %v", got)
	}

	// Corrupt everything: one byte differs, length preserved, and the
	// sender's buffer is untouched.
	clk, f, trs, logs = faultyPair(t, 5)
	f.SetSpec(FaultSpec{Corrupt: 1})
	orig := []byte("payload")
	sent := append([]byte(nil), orig...)
	if err := trs[0].Send(0, 1, sent); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruption mutated the sender's buffer")
	}
	got := (*logs[1])[0]
	if len(got) != len(orig) {
		t.Fatalf("corrupt changed length: %d vs %d", len(got), len(orig))
	}
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want exactly 1", diff)
	}

	// Reorder everything with a hold longer than the spacing between
	// two frames: the second frame overtakes the first.
	clk, f, trs, logs = faultyPair(t, 6)
	f.SetSpec(FaultSpec{Reorder: 1, ReorderDelay: 10 * time.Millisecond})
	if err := trs[0].Send(0, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	f.SetSpec(FaultSpec{}) // second frame passes clean
	if err := trs[0].Send(0, 1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(20 * time.Millisecond)
	if got := *logs[1]; len(got) != 2 || got[0] != "second" || got[1] != "first" {
		t.Fatalf("reorder: got %v, want [second first]", got)
	}
}

// TestFaultyCompositionDeterministic: reorder, base delay with jitter
// and duplication all active at once — the composition the correlated
// storm campaigns lean on. The impairments must compose losslessly
// (no frame vanishes: every sequence number still arrives, late or
// twice), honour the base delay floor, actually invert delivery order,
// and replay bit-identically from the seed.
func TestFaultyCompositionDeterministic(t *testing.T) {
	const frames = 40
	spec := FaultSpec{
		Duplicate:    0.25,
		Reorder:      0.3,
		ReorderDelay: 3 * time.Millisecond,
		Delay:        500 * time.Microsecond,
		Jitter:       300 * time.Microsecond,
	}
	run := func(seed uint64) ([]byte, []time.Duration, FaultStats) {
		clk := clock.NewManual()
		mem := NewMem(2, 1, clk, 100*time.Microsecond)
		f := NewFaults(seed, clk)
		tr0, tr1 := f.Wrap(mem.Node(0)), f.Wrap(mem.Node(1))
		var ids []byte
		var at []time.Duration
		tr1.SetReceiver(func(rail, src int, payload []byte) {
			ids = append(ids, payload[0])
			at = append(at, clk.Now())
		})
		f.SetSpec(spec)
		for i := 0; i < frames; i++ {
			if err := tr0.Send(0, 1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Millisecond)
		}
		clk.Advance(50 * time.Millisecond) // drain every held-back frame
		return ids, at, f.Stats()
	}

	ids, at, st := run(11)
	if st.Dropped != 0 || st.Partitioned != 0 || st.Corrupted != 0 {
		t.Fatalf("composition spec lost frames: %+v", st)
	}
	if st.Duplicated == 0 || st.Reordered == 0 {
		t.Fatalf("impairments never engaged: %+v", st)
	}
	if st.Delivered != frames+st.Duplicated || int64(len(ids)) != st.Delivered {
		t.Fatalf("delivered %d frames (stats %+v), want %d + %d duplicates",
			len(ids), st, frames, st.Duplicated)
	}
	seen := make(map[byte]bool)
	inversions := 0
	for i, id := range ids {
		seen[id] = true
		if i > 0 && ids[i-1] > id {
			inversions++
		}
	}
	if len(seen) != frames {
		t.Fatalf("only %d of %d distinct frames arrived", len(seen), frames)
	}
	if inversions == 0 {
		t.Fatal("reorder+delay composition never inverted delivery order")
	}
	// Every arrival respects the floor: fabric latency plus base delay
	// past the frame's send instant (frame i was sent at i·1ms).
	floor := 100*time.Microsecond + spec.Delay
	for i, id := range ids {
		sent := time.Duration(id) * time.Millisecond
		if at[i] < sent+floor {
			t.Fatalf("frame %d arrived %v after send, under the %v floor", id, at[i]-sent, floor)
		}
	}

	// Same seed: bit-identical delivery order, instants and stats.
	ids2, at2, st2 := run(11)
	if !bytes.Equal(ids, ids2) || st != st2 {
		t.Fatalf("same seed diverged:\n%v %+v\n%v %+v", ids, st, ids2, st2)
	}
	for i := range at {
		if at[i] != at2[i] {
			t.Fatalf("same seed delivery instant %d diverged: %v vs %v", i, at[i], at2[i])
		}
	}
	// Different seed: a different interleaving (overwhelmingly).
	ids3, _, _ := run(12)
	if bytes.Equal(ids, ids3) {
		t.Fatal("different seeds produced identical composed schedules")
	}
}

// TestFaultySkew: a skewed node's deliveries all arrive late by the
// skew; clearing it restores prompt delivery.
func TestFaultySkew(t *testing.T) {
	clk, f, trs, logs := faultyPair(t, 7)
	f.SetSkew(1, 5*time.Millisecond)
	if err := trs[0].Send(0, 1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(*logs[1]) != 0 {
		t.Fatal("skewed delivery arrived early")
	}
	clk.Advance(5 * time.Millisecond)
	if len(*logs[1]) != 1 {
		t.Fatal("skewed delivery never arrived")
	}
	f.SetSkew(1, 0)
	if err := trs[0].Send(0, 1, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(*logs[1]) != 2 {
		t.Fatal("cleared skew still delayed delivery")
	}
}

// TestFaultSpecValidation: malformed specs panic loudly.
func TestFaultSpecValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	clk := clock.NewManual()
	f := NewFaults(1, clk)
	mustPanic("drop > 1", func() { f.SetSpec(FaultSpec{Drop: 1.5}) })
	mustPanic("negative delay", func() { f.SetSpec(FaultSpec{Delay: -time.Second}) })
	mustPanic("negative skew", func() { f.SetSkew(0, -time.Second) })
}
