package transport

import (
	"fmt"
	"sync"
	"time"

	"drsnet/internal/clock"
)

// Mem is an in-memory cluster fabric: every node's Transport is a
// method-call pair into shared state, with delivery deferred through
// a clock.Clock. Under a drained clock (clock.NewManual) a
// multi-daemon test is fully deterministic and needs no sockets;
// under a live clock it behaves like a zero-loss LAN.
//
// Fault injection mirrors netsim's crash semantics: FailNode
// blackholes a node in both directions, RestoreNode brings it back
// with all NICs up; SetNIC kills or revives one (node, rail) NIC.
// Receiver state is checked at delivery time, so frames in flight to
// a node that crashes mid-latency are dropped.
type Mem struct {
	mu      sync.Mutex
	clk     clock.Clock
	latency time.Duration
	rails   int
	nodes   []*MemNode
}

// MemNode is one node's Transport into a Mem fabric.
type MemNode struct {
	m     *Mem
	node  int
	recv  func(rail, src int, payload []byte)
	nicUp []bool // per rail
	down  bool   // crashed: blackhole both directions
}

// NewMem builds an in-memory fabric of nodes×rails with the given
// one-way delivery latency. All NICs start up.
func NewMem(nodes, rails int, clk clock.Clock, latency time.Duration) *Mem {
	if nodes < 1 || rails < 1 {
		panic(fmt.Sprintf("transport: invalid Mem shape %d nodes × %d rails", nodes, rails))
	}
	if latency < 0 {
		panic("transport: negative Mem latency")
	}
	m := &Mem{clk: clk, latency: latency, rails: rails}
	m.nodes = make([]*MemNode, nodes)
	for i := range m.nodes {
		up := make([]bool, rails)
		for r := range up {
			up[r] = true
		}
		m.nodes[i] = &MemNode{m: m, node: i, nicUp: up}
	}
	return m
}

// Node returns node i's Transport.
func (m *Mem) Node(i int) *MemNode { return m.nodes[i] }

// FailNode crashes node i: every frame to or from it is dropped until
// RestoreNode.
func (m *Mem) FailNode(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[i].down = true
}

// RestoreNode revives node i with all NICs up.
func (m *Mem) RestoreNode(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.nodes[i]
	n.down = false
	for r := range n.nicUp {
		n.nicUp[r] = true
	}
}

// SetNIC sets the up/down state of node i's NIC on rail.
func (m *Mem) SetNIC(i, rail int, up bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[i].nicUp[rail] = up
}

// Node implements Transport.
func (n *MemNode) Node() int { return n.node }

// Nodes implements Transport.
func (n *MemNode) Nodes() int { return len(n.m.nodes) }

// Rails implements Transport.
func (n *MemNode) Rails() int { return n.m.rails }

// SetReceiver implements Transport.
func (n *MemNode) SetReceiver(fn func(rail, src int, payload []byte)) {
	n.m.mu.Lock()
	defer n.m.mu.Unlock()
	n.recv = fn
}

// Send implements Transport. The payload is copied per destination —
// callers reuse their buffers — and delivery is scheduled after the
// fabric latency, re-checking the receiver's NIC and crash state at
// delivery time.
func (n *MemNode) Send(rail, dst int, payload []byte) error {
	m := n.m
	if rail < 0 || rail >= m.rails {
		return fmt.Errorf("transport: rail %d out of range [0,%d)", rail, m.rails)
	}
	if dst != Broadcast && (dst < 0 || dst >= len(m.nodes)) {
		return fmt.Errorf("transport: dst %d out of range [0,%d)", dst, len(m.nodes))
	}
	m.mu.Lock()
	if n.down || !n.nicUp[rail] {
		m.mu.Unlock()
		return nil // silently vanishes, like a dead NIC
	}
	m.mu.Unlock()
	if dst == Broadcast {
		for i := range m.nodes {
			if i != n.node {
				m.deliverAfter(rail, n.node, i, payload)
			}
		}
		return nil
	}
	if dst == n.node {
		return nil // no loopback rail
	}
	m.deliverAfter(rail, n.node, dst, payload)
	return nil
}

func (m *Mem) deliverAfter(rail, src, dst int, payload []byte) {
	body := make([]byte, len(payload))
	copy(body, payload)
	m.clk.AfterFunc(m.latency, func() {
		m.mu.Lock()
		d := m.nodes[dst]
		if d.down || !d.nicUp[rail] || d.recv == nil {
			m.mu.Unlock()
			return
		}
		recv := d.recv
		m.mu.Unlock()
		recv(rail, src, body)
	})
}

var _ Transport = (*MemNode)(nil)
