package transport

import (
	"testing"
	"time"

	"drsnet/internal/clock"
)

type memFrame struct {
	rail, src int
	payload   string
}

func collect(n *MemNode, into *[]memFrame) {
	n.SetReceiver(func(rail, src int, payload []byte) {
		*into = append(*into, memFrame{rail, src, string(payload)})
	})
}

func TestMemUnicast(t *testing.T) {
	clk := clock.NewManual()
	m := NewMem(3, 2, clk, time.Millisecond)
	var got []memFrame
	collect(m.Node(1), &got)

	buf := []byte("hello")
	if err := m.Node(0).Send(1, 1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // sender reuses its buffer; the copy must be unaffected
	if len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	clk.Advance(time.Millisecond)
	if len(got) != 1 || got[0] != (memFrame{1, 0, "hello"}) {
		t.Fatalf("got %v", got)
	}
}

func TestMemBroadcast(t *testing.T) {
	clk := clock.NewManual()
	m := NewMem(3, 1, clk, 0)
	var a, b, self []memFrame
	collect(m.Node(0), &self)
	collect(m.Node(1), &a)
	collect(m.Node(2), &b)
	if err := m.Node(0).Send(0, Broadcast, []byte("all")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(0)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("broadcast reached %d+%d receivers, want 1+1", len(a), len(b))
	}
	if len(self) != 0 {
		t.Fatal("broadcast looped back to sender")
	}
}

func TestMemNICDown(t *testing.T) {
	clk := clock.NewManual()
	m := NewMem(2, 2, clk, 0)
	var got []memFrame
	collect(m.Node(1), &got)

	m.SetNIC(1, 0, false) // receiver's rail-0 NIC dead
	m.Node(0).Send(0, 1, []byte("lost"))
	m.Node(0).Send(1, 1, []byte("kept"))
	clk.Advance(0)
	if len(got) != 1 || got[0].payload != "kept" {
		t.Fatalf("got %v, want only the rail-1 frame", got)
	}

	m.SetNIC(0, 1, false) // sender's rail-1 NIC dead
	m.Node(0).Send(1, 1, []byte("swallowed"))
	clk.Advance(0)
	if len(got) != 1 {
		t.Fatalf("dead-NIC send delivered: %v", got)
	}
}

func TestMemCrashDropsInFlight(t *testing.T) {
	clk := clock.NewManual()
	m := NewMem(2, 1, clk, 10*time.Millisecond)
	var got []memFrame
	collect(m.Node(1), &got)

	m.Node(0).Send(0, 1, []byte("in-flight"))
	m.FailNode(1) // crashes while the frame is in the air
	clk.Advance(10 * time.Millisecond)
	if len(got) != 0 {
		t.Fatalf("crashed node received %v", got)
	}

	m.RestoreNode(1)
	m.Node(0).Send(0, 1, []byte("after-restore"))
	clk.Advance(10 * time.Millisecond)
	if len(got) != 1 || got[0].payload != "after-restore" {
		t.Fatalf("got %v after restore", got)
	}
}

func TestMemBoundsErrors(t *testing.T) {
	clk := clock.NewManual()
	m := NewMem(2, 1, clk, 0)
	if err := m.Node(0).Send(1, 1, nil); err == nil {
		t.Fatal("out-of-range rail accepted")
	}
	if err := m.Node(0).Send(0, 5, nil); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
}
