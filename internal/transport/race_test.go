package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drsnet/internal/clock"
)

// TestMemConcurrentChaosRace hammers a Mem fabric from every direction
// at once over a live clock: senders (unicast and broadcast), a
// receiver being re-installed mid-flight, and a chaos goroutine
// crashing, restoring and NIC-flipping nodes. The daemon path does all
// of these concurrently; under -race this is the Mem memory-safety
// gate. Frames may be lost to the chaos — that is the model — but
// nothing may tear.
func TestMemConcurrentChaosRace(t *testing.T) {
	clk := clock.NewWall()
	defer clk.Stop()
	const nodes, rails = 4, 2
	m := NewMem(nodes, rails, clk, 50*time.Microsecond)

	var delivered atomic.Int64
	for i := 0; i < nodes; i++ {
		m.Node(i).SetReceiver(func(rail, src int, payload []byte) {
			delivered.Add(1)
		})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Senders: every node sprays unicast and broadcast on both rails.
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := m.Node(i).Send(n%rails, (i+1+n%(nodes-1))%nodes, []byte("x")); err != nil {
					t.Error(err)
					return
				}
				if n%17 == 0 {
					if err := m.Node(i).Send(n%rails, Broadcast, []byte("b")); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}

	// Receiver churn: node 0's callback is swapped while frames are in
	// flight (delivery re-reads it under the fabric lock).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			m.Node(0).SetReceiver(func(rail, src int, payload []byte) {
				delivered.Add(1)
			})
			time.Sleep(100 * time.Microsecond)
			_ = n
		}
	}()

	// Chaos: fail-stop, restore, and NIC flips across the cluster.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			victim := n % nodes
			m.FailNode(victim)
			m.SetNIC((victim+1)%nodes, n%rails, false)
			time.Sleep(50 * time.Microsecond)
			m.RestoreNode(victim)
			m.SetNIC((victim+1)%nodes, n%rails, true)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Give in-flight deliveries their latency, then check traffic
	// actually flowed through the chaos.
	time.Sleep(5 * time.Millisecond)
	if delivered.Load() == 0 {
		t.Fatal("no frame survived — the fabric deadlocked or dropped everything")
	}
}
