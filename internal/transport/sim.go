package transport

import "drsnet/internal/netsim"

// Sim adapts one node of a netsim.Net (dual-rail Network or switched
// FabricNet) to the Transport interface, so protocol daemons run
// unmodified inside the simulator.
type Sim struct {
	net  netsim.Net
	node int
	recv func(rail, src int, payload []byte)
}

// NewSim attaches a transport to node in net. It installs itself as
// the node's netsim handler.
func NewSim(net netsim.Net, node int) *Sim {
	s := &Sim{net: net, node: node}
	net.SetHandler(node, func(fr netsim.Frame) {
		if s.recv != nil {
			s.recv(fr.Rail, fr.Src, fr.Payload)
		}
	})
	return s
}

// Node implements Transport.
func (s *Sim) Node() int { return s.node }

// Nodes implements Transport.
func (s *Sim) Nodes() int { return s.net.Nodes() }

// Rails implements Transport.
func (s *Sim) Rails() int { return s.net.Rails() }

// Send implements Transport.
func (s *Sim) Send(rail, dst int, payload []byte) error {
	if dst == Broadcast {
		dst = netsim.Broadcast
	}
	return s.net.Send(s.node, rail, dst, payload)
}

// SetReceiver implements Transport.
func (s *Sim) SetReceiver(fn func(rail, src int, payload []byte)) {
	s.recv = fn
}

var _ Transport = (*Sim)(nil)
