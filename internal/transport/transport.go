// Package transport defines the node-to-network seam every protocol
// layer in this repository runs behind: a Transport is a node's view
// of its cluster fabric — one NIC per rail, addressed by node index.
// Three implementations exist:
//
//   - Sim: one node of a deterministic netsim network (dual-rail
//     Network or switched FabricNet). The simulator path.
//   - Mem: an in-memory cluster where delivery is deferred through a
//     clock.Clock — hermetic multi-daemon tests with no sockets, and
//     fully deterministic under a drained clock.
//   - UDP: real UDP sockets between processes, framing payloads with
//     a small validated header. The live daemon (cmd/drsd) path.
//
// Protocol code written against Transport runs unmodified over all
// three. Real transports deliver short, truncated, or hostile
// datagrams: every wire codec downstream must bounds-check (see
// internal/routing/wire), and implementations here must validate
// rail and source indices before handing frames up.
package transport

// Broadcast is the destination meaning "every node on the rail".
const Broadcast = -1

// Transport is a node's interface to its network: one NIC per rail,
// addressed by node index.
type Transport interface {
	// Node returns the local node index.
	Node() int
	// Nodes returns the cluster size.
	Nodes() int
	// Rails returns the number of independent networks.
	Rails() int
	// Send transmits payload on rail to dst (or Broadcast). Send never
	// blocks; delivery is best-effort, like the hardware it models.
	// Callers may reuse the payload buffer after Send returns:
	// implementations that defer delivery must copy.
	Send(rail, dst int, payload []byte) error
	// SetReceiver installs the frame callback. The callback may be
	// invoked concurrently by real transports; simulator transports
	// invoke it single-threaded.
	SetReceiver(fn func(rail, src int, payload []byte))
}
