package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"drsnet/internal/metrics"
)

// Counter names a UDP transport registers when given a metrics set.
const (
	// CtrRxErrors counts socket-level receive errors (not malformed
	// datagrams — those are silent, they're the internet's problem).
	CtrRxErrors = "transport.rx_errors"
	// CtrTxErrors counts swallowed per-peer WriteToUDP errors. Sends
	// stay best-effort — the counter is how an operator sees a rail
	// quietly eating frames.
	CtrTxErrors = "transport.tx_errors"
)

// rxBackoff bounds the receive loop's exponential backoff on
// persistent socket errors: 1ms doubling to 250ms, reset on the first
// successful read.
const (
	rxBackoffMin = time.Millisecond
	rxBackoffMax = 250 * time.Millisecond
)

// UDP frame header, prepended to every wire payload. A real socket
// receives whatever the network hands it — short datagrams, stale
// traffic from a previous cluster, port scans — so the header is
// validated before any byte reaches the protocol codecs:
//
//	[0] magic 0xD7
//	[1] version
//	[2:4] source node index, big endian
const (
	udpMagic     = 0xD7
	udpVersion   = 1
	udpHeaderLen = 4
)

// maxDatagram bounds one receive; DRS control and data frames are
// far smaller, and anything larger is not ours.
const maxDatagram = 64 << 10

// UDPConfig names the sockets of one node in a cluster: where this
// node listens on each rail, and where every node (including itself,
// for index alignment) listens on each rail.
type UDPConfig struct {
	// Node is the local node index.
	Node int
	// Listen holds one local bind address per rail, e.g.
	// "127.0.0.1:7100".
	Listen []string
	// Peers holds every node's per-rail address: Peers[node][rail].
	// Row Node is ignored for sending but must be present.
	Peers [][]string
}

// UDP is a Transport over real UDP sockets, one socket per rail. It
// frames payloads with a validated header and drops anything
// malformed: wrong magic, wrong version, source index out of range,
// or a datagram shorter than the header. Payload bytes are copied out
// of the receive buffer before the callback runs, and each rail's
// receive loop runs on its own goroutine — the receiver callback must
// be safe for concurrent invocation, as the Transport contract warns.
type UDP struct {
	node  int
	nodes int
	rails int
	conns []*net.UDPConn   // per rail
	peers [][]*net.UDPAddr // [node][rail]

	mu     sync.Mutex
	recv   func(rail, src int, payload []byte)
	rxErr  *metrics.Counter
	txErr  *metrics.Counter
	closed bool
	wg     sync.WaitGroup
}

// NewUDP binds the local sockets and starts one receive loop per
// rail. It fails fast on a malformed config or an unbindable address.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	rails := len(cfg.Listen)
	nodes := len(cfg.Peers)
	if rails < 1 {
		return nil, fmt.Errorf("transport: no listen addresses")
	}
	if nodes < 2 {
		return nil, fmt.Errorf("transport: need at least 2 peers, have %d", nodes)
	}
	if cfg.Node < 0 || cfg.Node >= nodes {
		return nil, fmt.Errorf("transport: node %d out of range [0,%d)", cfg.Node, nodes)
	}
	u := &UDP{node: cfg.Node, nodes: nodes, rails: rails,
		rxErr: &metrics.Counter{}, txErr: &metrics.Counter{}}
	u.peers = make([][]*net.UDPAddr, nodes)
	for i, row := range cfg.Peers {
		if len(row) != rails {
			return nil, fmt.Errorf("transport: peer %d has %d rail addresses, want %d", i, len(row), rails)
		}
		u.peers[i] = make([]*net.UDPAddr, rails)
		for r, addr := range row {
			a, err := net.ResolveUDPAddr("udp", addr)
			if err != nil {
				return nil, fmt.Errorf("transport: peer %d rail %d: %w", i, r, err)
			}
			u.peers[i][r] = a
		}
	}
	for r, addr := range cfg.Listen {
		la, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: listen rail %d: %w", r, err)
		}
		conn, err := net.ListenUDP("udp", la)
		if err != nil {
			u.closeConns()
			return nil, fmt.Errorf("transport: listen rail %d: %w", r, err)
		}
		u.conns = append(u.conns, conn)
	}
	for r := range u.conns {
		u.wg.Add(1)
		go u.rxLoop(r)
	}
	return u, nil
}

// Node implements Transport.
func (u *UDP) Node() int { return u.node }

// Nodes implements Transport.
func (u *UDP) Nodes() int { return u.nodes }

// Rails implements Transport.
func (u *UDP) Rails() int { return u.rails }

// SetReceiver implements Transport.
func (u *UDP) SetReceiver(fn func(rail, src int, payload []byte)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.recv = fn
}

// SetMetrics redirects the transport's error counters into set (under
// CtrRxErrors and CtrTxErrors), so socket trouble shows up next to the
// protocol counters in a daemon's status report. Errors counted before
// the call stay on the internal counters.
func (u *UDP) SetMetrics(set *metrics.Set) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.rxErr = set.Counter(CtrRxErrors)
	u.txErr = set.Counter(CtrTxErrors)
}

// counters returns the current error counters under the lock.
func (u *UDP) counters() (rx, tx *metrics.Counter) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.rxErr, u.txErr
}

// Send implements Transport. Sends are best-effort: a socket-level
// error on one destination is swallowed, exactly as a frame into a
// dead segment vanishes in the simulator — but counted under
// CtrTxErrors, so the quiet loss is visible in the daemon's metrics.
// Only malformed requests error.
func (u *UDP) Send(rail, dst int, payload []byte) error {
	if rail < 0 || rail >= u.rails {
		return fmt.Errorf("transport: rail %d out of range [0,%d)", rail, u.rails)
	}
	if dst != Broadcast && (dst < 0 || dst >= u.nodes) {
		return fmt.Errorf("transport: dst %d out of range [0,%d)", dst, u.nodes)
	}
	buf := make([]byte, udpHeaderLen+len(payload))
	buf[0] = udpMagic
	buf[1] = udpVersion
	binary.BigEndian.PutUint16(buf[2:4], uint16(u.node))
	copy(buf[udpHeaderLen:], payload)
	_, txErr := u.counters()
	if dst == Broadcast {
		for i := 0; i < u.nodes; i++ {
			if i != u.node {
				if _, err := u.conns[rail].WriteToUDP(buf, u.peers[i][rail]); err != nil {
					txErr.Inc()
				}
			}
		}
		return nil
	}
	if dst == u.node {
		return nil
	}
	if _, err := u.conns[rail].WriteToUDP(buf, u.peers[dst][rail]); err != nil {
		txErr.Inc()
	}
	return nil
}

// rxLoop reads rail's socket until Close, validating each datagram's
// header before dispatching it. Receive errors are counted and backed
// off exponentially (1ms doubling to 250ms, reset on success): a
// transient error keeps the rail alive, a persistent one — a
// force-closed socket, a dead interface — must not busy-spin a core.
func (u *UDP) rxLoop(rail int) {
	defer u.wg.Done()
	buf := make([]byte, maxDatagram)
	backoff := rxBackoffMin
	for {
		n, _, err := u.conns[rail].ReadFromUDP(buf)
		if err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed {
				return
			}
			rxErr, _ := u.counters()
			rxErr.Inc()
			time.Sleep(backoff)
			if backoff *= 2; backoff > rxBackoffMax {
				backoff = rxBackoffMax
			}
			continue
		}
		backoff = rxBackoffMin
		if n < udpHeaderLen || buf[0] != udpMagic || buf[1] != udpVersion {
			continue // not ours
		}
		src := int(binary.BigEndian.Uint16(buf[2:4]))
		if src >= u.nodes || src == u.node {
			continue // forged or reflected source index
		}
		u.mu.Lock()
		recv := u.recv
		u.mu.Unlock()
		if recv == nil {
			continue
		}
		body := make([]byte, n-udpHeaderLen)
		copy(body, buf[udpHeaderLen:n])
		recv(rail, src, body)
	}
}

// Close shuts the sockets and waits for the receive loops to exit.
// It is idempotent.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	u.closeConns()
	u.wg.Wait()
	return nil
}

func (u *UDP) closeConns() {
	for _, c := range u.conns {
		c.Close()
	}
}

var _ Transport = (*UDP)(nil)
