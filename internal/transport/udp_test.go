package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"drsnet/internal/metrics"
)

// freeAddrs reserves n loopback UDP ports and returns them as
// listen addresses. The sockets are closed, so a subsequent bind can
// race with another process — acceptable for a local test.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = conn.LocalAddr().String()
		conn.Close()
	}
	return addrs
}

// udpPair builds a 2-node, 2-rail cluster on loopback.
func udpPair(t *testing.T) (*UDP, *UDP) {
	t.Helper()
	a := freeAddrs(t, 4)
	peers := [][]string{{a[0], a[1]}, {a[2], a[3]}}
	u0, err := NewUDP(UDPConfig{Node: 0, Listen: peers[0], Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	u1, err := NewUDP(UDPConfig{Node: 1, Listen: peers[1], Peers: peers})
	if err != nil {
		u0.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { u0.Close(); u1.Close() })
	return u0, u1
}

type udpSink struct {
	mu     sync.Mutex
	frames []memFrame
}

func (s *udpSink) recv(rail, src int, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, memFrame{rail, src, string(payload)})
}

func (s *udpSink) wait(t *testing.T, n int) []memFrame {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		if len(s.frames) >= n {
			out := append([]memFrame(nil), s.frames...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t.Fatalf("timed out waiting for %d frames, have %v", n, s.frames)
	return nil
}

func TestUDPExchange(t *testing.T) {
	u0, u1 := udpPair(t)
	var sink udpSink
	u1.SetReceiver(sink.recv)

	if err := u0.Send(0, 1, []byte("rail0")); err != nil {
		t.Fatal(err)
	}
	if err := u0.Send(1, 1, []byte("rail1")); err != nil {
		t.Fatal(err)
	}
	frames := sink.wait(t, 2)
	seen := map[memFrame]bool{}
	for _, f := range frames {
		seen[f] = true
	}
	if !seen[memFrame{0, 0, "rail0"}] || !seen[memFrame{1, 0, "rail1"}] {
		t.Fatalf("frames %v missing expected rail deliveries", frames)
	}
}

func TestUDPBroadcast(t *testing.T) {
	u0, u1 := udpPair(t)
	var sink udpSink
	u1.SetReceiver(sink.recv)
	if err := u0.Send(0, Broadcast, []byte("bcast")); err != nil {
		t.Fatal(err)
	}
	frames := sink.wait(t, 1)
	if frames[0] != (memFrame{0, 0, "bcast"}) {
		t.Fatalf("got %v", frames[0])
	}
}

// TestUDPRejectsMalformed feeds the receiver raw datagrams a real
// network could produce — truncated, wrong magic, wrong version,
// forged source — and checks none of them reach the protocol, while
// a valid frame after the junk still does.
func TestUDPRejectsMalformed(t *testing.T) {
	u0, u1 := udpPair(t)
	var sink udpSink
	u1.SetReceiver(sink.recv)

	raddr, err := net.ResolveUDPAddr("udp", u1.conns[0].LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	junkConn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer junkConn.Close()

	forgedSelf := []byte{udpMagic, udpVersion, 0, 0, 'x'}
	binary.BigEndian.PutUint16(forgedSelf[2:4], 1) // src == receiver itself
	outOfRange := []byte{udpMagic, udpVersion, 0, 0, 'x'}
	binary.BigEndian.PutUint16(outOfRange[2:4], 9)
	junk := [][]byte{
		{},                        // empty
		{udpMagic},                // truncated header
		{udpMagic, udpVersion, 0}, // one byte short
		{0xFF, udpVersion, 0, 0},  // wrong magic
		{udpMagic, 99, 0, 0},      // wrong version
		forgedSelf,                // reflected source
		outOfRange,                // source index out of range
	}
	for _, d := range junk {
		if _, err := junkConn.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := u0.Send(0, 1, []byte("legit")); err != nil {
		t.Fatal(err)
	}
	frames := sink.wait(t, 1)
	for _, f := range frames {
		if f.payload != "legit" {
			t.Fatalf("junk datagram delivered: %v", f)
		}
	}
}

func TestUDPBoundsErrors(t *testing.T) {
	u0, _ := udpPair(t)
	if err := u0.Send(7, 1, nil); err == nil {
		t.Fatal("out-of-range rail accepted")
	}
	if err := u0.Send(0, 9, nil); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
}

func TestUDPConfigValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{Node: 0}); err == nil {
		t.Fatal("empty config accepted")
	}
	a := freeAddrs(t, 2)
	peers := [][]string{{a[0]}, {a[1]}}
	if _, err := NewUDP(UDPConfig{Node: 5, Listen: peers[0], Peers: peers}); err == nil {
		t.Fatal("node index out of range accepted")
	}
	if _, err := NewUDP(UDPConfig{Node: 0, Listen: peers[0], Peers: [][]string{{a[0], "x"}, {a[1], "y"}}}); err == nil {
		t.Fatal("ragged peer rails accepted")
	}
}

func TestUDPCloseIdempotent(t *testing.T) {
	u0, u1 := udpPair(t)
	if err := u0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u0.Close(); err != nil {
		t.Fatal(err)
	}
	_ = u1
}

// TestUDPTxErrorsCounted: a send the socket refuses (oversized
// datagram) stays best-effort — no error to the caller — but lands in
// transport.tx_errors, both on unicast and per-peer on broadcast.
func TestUDPTxErrorsCounted(t *testing.T) {
	u0, _ := udpPair(t)
	set := metrics.NewSet()
	u0.SetMetrics(set)
	huge := make([]byte, 1<<20) // over any UDP datagram limit
	if err := u0.Send(0, 1, huge); err != nil {
		t.Fatalf("oversized send errored: %v", err)
	}
	if got := set.Counter(CtrTxErrors).Value(); got != 1 {
		t.Fatalf("tx_errors after unicast = %d, want 1", got)
	}
	if err := u0.Send(0, Broadcast, huge); err != nil {
		t.Fatalf("oversized broadcast errored: %v", err)
	}
	if got := set.Counter(CtrTxErrors).Value(); got != 2 {
		t.Fatalf("tx_errors after broadcast = %d, want 2 (one peer)", got)
	}
}

// TestUDPRxErrorBackoff: a socket stuck returning errors (read
// deadline in the past) is counted under transport.rx_errors and
// backed off instead of busy-spun — a bounded handful of retries over
// the window, not thousands — and the rail recovers when the socket
// does.
func TestUDPRxErrorBackoff(t *testing.T) {
	u0, u1 := udpPair(t)
	set := metrics.NewSet()
	u1.SetMetrics(set)
	var sink udpSink
	u1.SetReceiver(sink.recv)

	u1.conns[0].SetReadDeadline(time.Unix(1, 0)) // every read times out
	time.Sleep(120 * time.Millisecond)
	errs := set.Counter(CtrRxErrors).Value()
	if errs == 0 {
		t.Fatal("rx_errors not counted on a failing socket")
	}
	// 120ms of 1-2-4-...ms exponential backoff is ~7 retries; a spin
	// would be tens of thousands.
	if errs > 20 {
		t.Fatalf("rx_errors = %d in 120ms — receive loop is spinning, not backing off", errs)
	}

	u1.conns[0].SetReadDeadline(time.Time{}) // socket recovers
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := u0.Send(0, 1, []byte("revived")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		sink.mu.Lock()
		n := len(sink.frames)
		sink.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rail did not recover after the socket error cleared")
		}
	}
}
