package drsnet

import (
	"fmt"
	"time"

	"drsnet/internal/experiments"
	"drsnet/internal/runtime"
)

// Protocols returns the names of every registered routing protocol in
// the runtime registry's canonical (sorted) order — the protocols
// CompareProtocols reports on.
func Protocols() []string { return runtime.Protocols() }

// ProtocolResult summarizes what an application flow experienced
// across an injected failure under one routing protocol.
type ProtocolResult struct {
	// Protocol is the registered protocol name (e.g. "drs",
	// "reactive", "linkstate", "static").
	Protocol string
	// Recovered reports whether delivery resumed after the failure.
	Recovered bool
	// Outage is the time from the failure to the first subsequent
	// delivery (censored at the experiment end when not recovered).
	Outage time.Duration
	// Lost counts application messages that never arrived.
	Lost int
	// DetectionLatency and RepairLatency are the DRS's internal
	// timings (zero for the baselines).
	DetectionLatency time.Duration
	RepairLatency    time.Duration
	// MaskedFromTCP reports whether the outage fits within one TCP
	// retransmission — the paper's "applications are unaware" bar.
	MaskedFromTCP bool
}

// Failure scenarios accepted by CompareProtocols.
const (
	// FailureNIC fails the destination's primary NIC.
	FailureNIC = "nic"
	// FailureBackplane fails an entire shared network.
	FailureBackplane = "backplane"
	// FailureCrossRail fails the sender's rail-0 NIC and the
	// receiver's rail-1 NIC, leaving no direct path — only a relay.
	FailureCrossRail = "crossrail"
)

// CompareProtocols replays the same failure scenario on an identical
// cluster under every registered routing protocol — the DRS, the
// RIP-like reactive baseline, the OSPF-like link-state baseline and
// static routing by default — and reports the application-visible
// outcome of each: the paper's proactive-vs-traditional-routing
// comparison.
func CompareProtocols(nodes int, scenario string) ([]ProtocolResult, error) {
	if err := validateClusterSize(nodes); err != nil {
		return nil, err
	}
	var sc experiments.Scenario
	switch scenario {
	case FailureNIC:
		sc = experiments.ScenarioNIC
	case FailureBackplane:
		sc = experiments.ScenarioBackplane
	case FailureCrossRail:
		sc = experiments.ScenarioCrossRail
	default:
		return nil, fmt.Errorf("drsnet: unknown failure scenario %q", scenario)
	}
	base := experiments.DefaultRecoveryConfig(runtime.ProtoDRS, sc)
	base.Nodes = nodes
	results, err := experiments.CompareRecovery(base)
	if err != nil {
		return nil, err
	}
	out := make([]ProtocolResult, 0, len(results))
	for _, r := range results {
		out = append(out, ProtocolResult{
			Protocol:         r.Config.Protocol,
			Recovered:        r.Recovered,
			Outage:           r.Outage,
			Lost:             r.Lost,
			DetectionLatency: r.DetectionLatency,
			RepairLatency:    r.RepairLatency,
			MaskedFromTCP:    r.MaskedFromTCP,
		})
	}
	return out, nil
}
